(* The NKScript interpreter: language semantics, builtins, and the
   sandbox (fuel, heap, kill). *)

open Core.Script

let eval src =
  let ctx = Interp.create () in
  Builtins.install ctx;
  Interp.run_string ctx src

let eval_str src = Value.to_string (eval src)

let eval_num src = Value.to_number (eval src)

let check_num name expected src = Alcotest.(check (float 1e-9)) name expected (eval_num src)

let check_str name expected src = Alcotest.(check string) name expected (eval_str src)

let test_arithmetic () =
  check_num "add" 7.0 "3 + 4";
  check_num "precedence" 14.0 "2 + 3 * 4";
  check_num "parens" 20.0 "(2 + 3) * 4";
  check_num "division" 2.5 "5 / 2";
  check_num "modulo" 1.0 "7 % 3";
  check_num "negative" (-5.0) "-5";
  check_num "unary chain" 5.0 "- -5";
  check_num "float literal" 3.14 "3.14";
  check_num "hex literal" 255.0 "0xff";
  check_num "exponent" 1500.0 "1.5e3"

let test_string_ops () =
  check_str "concat" "ab" "\"a\" + \"b\"";
  check_str "number coercion" "x1" "\"x\" + 1";
  check_num "length" 5.0 "\"hello\".length";
  check_str "upper" "HI" "\"hi\".toUpperCase()";
  check_str "substring" "ell" "\"hello\".substring(1, 4)";
  check_num "indexOf" 2.0 "\"hello\".indexOf(\"ll\")";
  check_num "indexOf missing" (-1.0) "\"hello\".indexOf(\"z\")";
  check_str "replace" "heLLo" "\"hello\".replace(\"ll\", \"LL\")";
  check_str "split+join" "a|b|c" "\"a,b,c\".split(\",\").join(\"|\")";
  check_str "charAt" "e" "\"hello\".charAt(1)";
  check_str "trim" "x" "\"  x \".trim()";
  check_str "single quotes" "ok" "'ok'";
  check_str "escapes" "a\nb" "\"a\\nb\""

let test_comparison_equality () =
  check_num "lt" 1.0 "(1 < 2) ? 1 : 0";
  check_num "ge" 1.0 "(2 >= 2) ? 1 : 0";
  check_num "string compare" 1.0 "(\"abc\" < \"abd\") ? 1 : 0";
  check_num "eq num" 1.0 "(1 == 1) ? 1 : 0";
  check_num "eq coerce" 1.0 "(1 == \"1\") ? 1 : 0";
  check_num "neq" 1.0 "(1 != 2) ? 1 : 0";
  check_num "null eq undefined" 1.0 "(null == undefined) ? 1 : 0";
  check_num "nan neq" 0.0 "(0/0 == 0/0) ? 1 : 0"

let test_logic () =
  check_num "and shortcircuit" 0.0 "false && undefinedFunctionNotCalled()";
  check_num "or shortcircuit" 1.0 "true || undefinedFunctionNotCalled()";
  check_str "or returns value" "fallback" "null || \"fallback\"";
  check_num "not" 1.0 "(!false) ? 1 : 0";
  check_num "truthiness empty string" 0.0 "(\"\") ? 1 : 0";
  check_num "truthiness object" 1.0 "({}) ? 1 : 0"

let test_variables_and_scope () =
  check_num "var" 10.0 "var x = 10; x";
  check_num "assignment" 6.0 "var x = 5; x = 6; x";
  check_num "compound" 15.0 "var x = 5; x += 10; x";
  check_num "multi declaration" 3.0 "var a = 1, b = 2; a + b";
  check_num "closure capture" 42.0
    "function make(n) { return function() { return n; }; } var f = make(42); f()";
  check_num "closures are independent" 3.0
    {| function counter() { var n = 0; return function() { n = n + 1; return n; }; }
       var a = counter(); var b = counter();
       a(); a(); a() - 0; b(); a; 3 |};
  check_num "inner var does not leak via function" 1.0
    "function f() { var hidden = 99; return 1; } f()"

let test_increment_decrement () =
  check_num "postfix returns old" 5.0 "var x = 5; x++";
  check_num "postfix increments" 6.0 "var x = 5; x++; x";
  check_num "prefix returns new" 6.0 "var x = 5; ++x";
  check_num "decrement" 4.0 "var x = 5; --x";
  check_num "member increment" 2.0 "var o = { n: 1 }; o.n++; o.n"

let test_control_flow () =
  check_num "if true" 1.0 "var r = 0; if (1 < 2) { r = 1; } else { r = 2; } r";
  check_num "if false" 2.0 "var r = 0; if (1 > 2) { r = 1; } else { r = 2; } r";
  check_num "single-statement if" 7.0 "var r = 0; if (true) r = 7; r";
  check_num "while" 45.0 "var s = 0, i = 0; while (i < 10) { s += i; i++; } s";
  check_num "do-while runs once" 1.0 "var n = 0; do { n++; } while (false); n";
  check_num "for" 45.0 "var s = 0; for (var i = 0; i < 10; i++) { s += i; } s";
  check_num "break" 5.0 "var i = 0; while (true) { if (i == 5) break; i++; } i";
  check_num "continue" 25.0
    "var s = 0; for (var i = 0; i < 10; i++) { if (i % 2 == 0) continue; s += i; } s";
  check_num "for-in array" 3.0 "var n = 0; var a = [10, 20, 30]; for (var i in a) { n++; } n";
  check_num "for-in object" 2.0 "var n = 0; for (var k in { a: 1, b: 2 }) { n++; } n"

let test_functions () =
  check_num "declaration" 9.0 "function sq(x) { return x * x; } sq(3)";
  check_num "hoisting" 4.0 "var r = early(); function early() { return 4; } r";
  check_num "recursion" 120.0 "function fact(n) { return n < 2 ? 1 : n * fact(n - 1); } fact(5)";
  check_num "missing args are undefined" 1.0 "function f(a, b) { return b == undefined ? 1 : 0; } f(5)";
  check_num "extra args ignored" 3.0 "function f(a) { return a; } f(3, 4, 5)";
  check_num "no return yields undefined" 1.0
    "function f() { } (f() == undefined) ? 1 : 0";
  check_num "function expression" 8.0 "var twice = function(x) { return 2 * x; }; twice(4)";
  check_num "higher order" 11.0 "function apply(f, x) { return f(x); } apply(function(v) { return v + 1; }, 10)"

let test_objects () =
  check_num "literal and member" 1.0 "var o = { a: 1 }; o.a";
  check_num "index access" 2.0 "var o = { b: 2 }; o[\"b\"]";
  check_num "assignment" 3.0 "var o = {}; o.c = 3; o.c";
  check_num "nested" 4.0 "var o = { in_: { deep: 4 } }; o.in_.deep";
  check_num "missing is undefined" 1.0 "var o = {}; (o.nothing == undefined) ? 1 : 0";
  check_num "method this" 5.0 "var o = { v: 5, get: function() { return this.v; } }; o.get()";
  check_num "string keys" 6.0 "var o = { \"with space\": 6 }; o[\"with space\"]";
  check_num "typeof object" 1.0 "(typeof {} == \"object\") ? 1 : 0"

let test_arrays () =
  check_num "literal length" 3.0 "[1, 2, 3].length";
  check_num "index" 20.0 "var a = [10, 20, 30]; a[1]";
  check_num "assignment grows" 5.0 "var a = []; a[4] = 1; a.length";
  check_num "push/pop" 2.0 "var a = [1, 2, 3]; a.pop(); a.length";
  check_num "shift" 1.0 "var a = [1, 2]; a.shift()";
  check_str "join" "1-2-3" "[1, 2, 3].join(\"-\")";
  check_num "indexOf" 1.0 "[5, 6, 7].indexOf(6)";
  check_num "map" 6.0 "var s = 0; [1, 2, 3].map(function(x) { return x * 2; }).forEach(function(x) { s += x; }); s / 2";
  check_num "filter" 2.0 "[1, 2, 3, 4].filter(function(x) { return x % 2 == 0; }).length";
  check_str "sort default" "a,b,c" "[\"c\", \"a\", \"b\"].sort().join(\",\")";
  check_str "sort comparator" "3,2,1"
    "[1, 3, 2].sort(function(a, b) { return b - a; }).join(\",\")";
  check_str "slice" "2,3" "[1, 2, 3, 4].slice(1, 3).join(\",\")";
  check_str "concat" "1,2,3,4" "[1, 2].concat([3, 4]).join(\",\")";
  check_str "reverse" "3,2,1" "[1, 2, 3].reverse().join(\",\")"

let test_bytearrays () =
  check_num "empty" 0.0 "var b = new ByteArray(); b.length";
  check_num "append string" 5.0 "var b = new ByteArray(); b.append(\"hello\"); b.length";
  check_str "toString" "hello" "var b = new ByteArray(\"hello\"); b.toString()";
  check_num "byte read" 104.0 "var b = new ByteArray(\"hi\"); b[0]";
  check_num "byte write" 72.0 "var b = new ByteArray(\"hi\"); b[0] = 72; b[0]";
  check_str "append bytearray" "ab" "var x = new ByteArray(\"a\"); var y = new ByteArray(\"b\"); x.append(y); x.toString()";
  check_str "slice" "ell" "var b = new ByteArray(\"hello\"); b.slice(1, 4).toString()";
  check_num "typeof" 1.0 "(typeof new ByteArray() == \"bytearray\") ? 1 : 0"

let test_exceptions () =
  check_num "try-catch" 1.0 "var r = 0; try { throw \"x\"; r = 2; } catch (e) { r = 1; } r";
  check_str "catch binds value" "boom"
    "var r; try { throw \"boom\"; } catch (e) { r = e; } r";
  check_num "runtime error caught" 1.0
    "var r = 0; try { undefined.field; } catch (e) { r = 1; } r";
  (match eval "throw \"unhandled\";" with
   | exception Value.Script_error _ -> ()
   | _ -> Alcotest.fail "uncaught throw should raise")


let test_stray_break_is_an_error () =
  List.iter
    (fun src ->
      match eval src with
      | exception Value.Script_error _ -> ()
      | _ -> Alcotest.failf "expected error for %S" src)
    [
      "break;";
      "continue;";
      "function f() { break; } f()";
      "while (true) { var g = function() { break; }; g(); }";
    ]


let test_delete_operator () =
  check_num "deleted property is gone" 1.0
    "var o = { a: 1, b: 2 }; delete o.a; (o.a == undefined) ? 1 : 0";
  check_num "other properties survive" 2.0 "var o = { a: 1, b: 2 }; delete o.a; o.b";
  check_num "delete returns true" 1.0 "var o = { a: 1 }; delete o.a ? 1 : 0";
  check_num "for-in skips deleted" 1.0
    "var o = { a: 1, b: 2 }; delete o.a; var n = 0; for (var k in o) { n++; } n";
  (match eval "delete 5" with
   | exception Parser.Parse_error _ -> ()
   | _ -> Alcotest.fail "delete of a non-property should not parse")

let test_builtins () =
  check_num "Math.floor" 3.0 "Math.floor(3.9)";
  check_num "Math.max" 7.0 "Math.max(1, 7, 5)";
  check_num "Math.pow" 8.0 "Math.pow(2, 3)";
  check_num "Math.sqrt" 4.0 "Math.sqrt(16)";
  check_num "parseInt" 42.0 "parseInt(\"42abc\")";
  check_num "parseInt trims" 7.0 "parseInt(\" 7 \")";
  check_num "parseFloat" 2.5 "parseFloat(\"2.5\")";
  check_num "isNaN" 1.0 "isNaN(parseInt(\"zz\")) ? 1 : 0";
  check_str "String()" "12" "String(12)";
  check_num "Number()" 12.0 "Number(\"12\")";
  check_num "Math.random in range" 1.0
    "var ok = 1; for (var i = 0; i < 50; i++) { var r = Math.random(); if (r < 0 || r >= 1) ok = 0; } ok"

let test_math_random_deterministic () =
  let run () =
    let ctx = Interp.create () in
    Builtins.install ~seed:99 ctx;
    Value.to_number (Interp.run_string ctx "Math.random()")
  in
  Alcotest.(check (float 0.0)) "same seed, same value" (run ()) (run ())

let test_parse_errors () =
  List.iter
    (fun src ->
      match Parser.parse src with
      | exception Parser.Parse_error _ -> ()
      | exception Lexer.Lex_error _ -> ()
      | _ -> Alcotest.failf "expected syntax error for %S" src)
    [ "var"; "if ("; "function () {"; "1 +"; "var x = ;"; "{ a: }"; "\"unterminated"; "/* open" ]

let test_comments () =
  check_num "line comment" 3.0 "// note\n1 + 2";
  check_num "block comment" 3.0 "/* multi\nline */ 1 + 2";
  check_num "comment inside expr" 3.0 "1 + /* two */ 2"

let test_fuel_limit () =
  let ctx = Interp.create ~max_fuel:10_000 () in
  Builtins.install ctx;
  match Interp.run_string ctx "while (true) { }" with
  | exception Interp.Resource_exhausted _ -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_heap_limit () =
  (* The paper's misbehaving script: repeatedly doubling a string. *)
  let ctx = Interp.create ~max_heap_bytes:1_000_000 () in
  Builtins.install ctx;
  match Interp.run_string ctx {| var s = "x"; while (true) { s = s + s; } |} with
  | exception Interp.Resource_exhausted msg ->
    Alcotest.(check bool) "heap message" true
      (Core.Util.Strutil.contains_sub msg ~sub:"heap")
  | _ -> Alcotest.fail "expected heap exhaustion"

let test_heap_limit_bytearray () =
  let ctx = Interp.create ~max_heap_bytes:100_000 () in
  Builtins.install ctx;
  match
    Interp.run_string ctx
      {| var b = new ByteArray(); while (true) { b.append("xxxxxxxxxxxxxxxx"); } |}
  with
  | exception Interp.Resource_exhausted _ -> ()
  | _ -> Alcotest.fail "expected heap exhaustion via bytearray"

let test_kill () =
  let ctx = Interp.create () in
  Builtins.install ctx;
  Interp.kill ctx;
  (match Interp.run_string ctx "1 + 1" with
   | exception Interp.Terminated -> ()
   | _ -> Alcotest.fail "killed context should not run");
  Interp.revive ctx;
  Alcotest.(check (float 0.)) "revived" 2.0 (Value.to_number (Interp.run_string ctx "1 + 1"))

let test_usage_counters () =
  let ctx = Interp.create () in
  Builtins.install ctx;
  ignore (Interp.run_string ctx "var s = \"\"; for (var i = 0; i < 100; i++) { s += \"x\"; }");
  Alcotest.(check bool) "fuel consumed" true (Interp.fuel_used ctx > 100);
  Alcotest.(check bool) "heap consumed" true (Interp.heap_used ctx > 100);
  Interp.reset_usage ctx;
  Alcotest.(check int) "fuel reset" 0 (Interp.fuel_used ctx);
  Alcotest.(check int) "heap reset" 0 (Interp.heap_used ctx)

let test_isolation_between_contexts () =
  let a = Interp.create () in
  let b = Interp.create () in
  Builtins.install a;
  Builtins.install b;
  ignore (Interp.run_string a "var secret = 42;");
  match Interp.run_string b "secret" with
  | exception Value.Script_error _ -> ()
  | _ -> Alcotest.fail "contexts must not share globals"

let test_apply () =
  let ctx = Interp.create () in
  Builtins.install ctx;
  ignore (Interp.run_string ctx "function add(a, b) { return a + b; }");
  let f = Option.get (Interp.get_global ctx "add") in
  let result = Interp.apply ctx f [ Value.Vnum 2.0; Value.Vnum 3.0 ] in
  Alcotest.(check (float 0.)) "apply" 5.0 (Value.to_number result)

let test_native_roundtrip () =
  let ctx = Interp.create () in
  Builtins.install ctx;
  let called = ref [] in
  Interp.define_global ctx "record"
    (Value.native "record" (fun _ args ->
         called := List.map Value.to_string args :: !called;
         Value.Vnum (float_of_int (List.length args))));
  ignore (Interp.run_string ctx "record(\"a\", 1, true)");
  Alcotest.(check (list (list string))) "args seen" [ [ "a"; "1"; "true" ] ] !called

let test_figure2_transcoding_script () =
  (* The paper's Fig. 2 handler, structurally: read chunks, branch on
     dimensions, compute scaled sizes. *)
  (* A 352x416 portrait image is height-bound: w = x/y * 176. *)
  check_num "fig2 aspect math"
    (352.0 /. 416.0 *. 176.0)
    {|
var dim = { x: 352, y: 416 };
var w = dim.x, h = dim.y;
if (dim.x > 176 || dim.y > 208) {
  if (dim.x / 176 > dim.y / 208) {
    w = 176; h = dim.y / dim.x * 208;
  } else {
    w = dim.x / dim.y * 176; h = 208;
  }
}
w
|}

let context_pool_reuse () =
  let made = ref 0 in
  let pool =
    Context_pool.create ~capacity:2
      ~make:(fun () ->
        incr made;
        let ctx = Interp.create () in
        Builtins.install ctx;
        ctx)
      ()
  in
  let c1 = Context_pool.acquire pool in
  ignore (Interp.run_string c1 "var x = 1;");
  Context_pool.release pool c1;
  let c2 = Context_pool.acquire pool in
  Alcotest.(check bool) "reused same context" true (c1 == c2);
  Alcotest.(check int) "one creation" 1 !made;
  Alcotest.(check int) "reuse counted" 1 (Context_pool.reused pool);
  Alcotest.(check int) "usage reset on reuse" 0 (Interp.fuel_used c2)

let context_pool_capacity () =
  let pool = Context_pool.create ~capacity:1 ~make:(fun () -> Interp.create ()) () in
  let a = Context_pool.acquire pool in
  let b = Context_pool.acquire pool in
  Context_pool.release pool a;
  Context_pool.release pool b (* beyond capacity: dropped *);
  let c = Context_pool.acquire pool in
  let d = Context_pool.acquire pool in
  Alcotest.(check bool) "first from pool" true (c == a);
  Alcotest.(check bool) "second is fresh" true (d != b)

let interp_numbers_prop =
  QCheck.Test.make ~name:"interp: integer arithmetic matches OCaml" ~count:200
    QCheck.(pair (int_range (-1000) 1000) (int_range (-1000) 1000))
    (fun (a, b) ->
      let src = Printf.sprintf "(%d) + (%d) * 2 - (%d)" a b a in
      eval_num src = float_of_int (a + (b * 2) - a))

let interp_string_concat_prop =
  QCheck.Test.make ~name:"interp: string concatenation matches OCaml" ~count:100
    QCheck.(pair (string_gen_of_size (Gen.int_bound 20) (Gen.char_range 'a' 'z'))
              (string_gen_of_size (Gen.int_bound 20) (Gen.char_range 'a' 'z')))
    (fun (a, b) -> eval_str (Printf.sprintf "%S + %S" a b) = a ^ b)

let suite =
  [
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "strings" `Quick test_string_ops;
    Alcotest.test_case "comparison and equality" `Quick test_comparison_equality;
    Alcotest.test_case "logic and truthiness" `Quick test_logic;
    Alcotest.test_case "variables and closures" `Quick test_variables_and_scope;
    Alcotest.test_case "increment/decrement" `Quick test_increment_decrement;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "functions" `Quick test_functions;
    Alcotest.test_case "objects" `Quick test_objects;
    Alcotest.test_case "arrays" `Quick test_arrays;
    Alcotest.test_case "byte arrays" `Quick test_bytearrays;
    Alcotest.test_case "exceptions" `Quick test_exceptions;
    Alcotest.test_case "stray break/continue rejected" `Quick test_stray_break_is_an_error;
    Alcotest.test_case "delete operator" `Quick test_delete_operator;
    Alcotest.test_case "builtins" `Quick test_builtins;
    Alcotest.test_case "Math.random is seed-deterministic" `Quick
      test_math_random_deterministic;
    Alcotest.test_case "syntax errors" `Quick test_parse_errors;
    Alcotest.test_case "comments" `Quick test_comments;
    Alcotest.test_case "sandbox: fuel limit" `Quick test_fuel_limit;
    Alcotest.test_case "sandbox: heap limit (string doubling)" `Quick test_heap_limit;
    Alcotest.test_case "sandbox: heap limit (bytearray)" `Quick test_heap_limit_bytearray;
    Alcotest.test_case "sandbox: kill and revive" `Quick test_kill;
    Alcotest.test_case "sandbox: usage counters" `Quick test_usage_counters;
    Alcotest.test_case "sandbox: contexts are isolated" `Quick test_isolation_between_contexts;
    Alcotest.test_case "apply from OCaml" `Quick test_apply;
    Alcotest.test_case "native functions" `Quick test_native_roundtrip;
    Alcotest.test_case "Fig. 2 handler arithmetic" `Quick test_figure2_transcoding_script;
    Alcotest.test_case "context pool: reuse" `Quick context_pool_reuse;
    Alcotest.test_case "context pool: capacity" `Quick context_pool_capacity;
    QCheck_alcotest.to_alcotest interp_numbers_prop;
    QCheck_alcotest.to_alcotest interp_string_concat_prop;
  ]
