(* Tests for Nk_util: PRNG determinism, heap ordering, statistics,
   EWMA, string helpers, cothreads. *)

open Core.Util

let check_float = Alcotest.(check (float 1e-9))

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seeds_differ () =
  let a = Prng.create 1 and b = Prng.create 2 in
  Alcotest.(check bool) "different streams" false (Prng.next_int64 a = Prng.next_int64 b)

let test_prng_int_bounds () =
  let rng = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 13 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 13)
  done

let test_prng_int_rejects_nonpositive () =
  let rng = Prng.create 7 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0))

let test_prng_float_bounds () =
  let rng = Prng.create 3 in
  for _ = 1 to 1000 do
    let v = Prng.float rng 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
  done

let test_prng_exponential_positive () =
  let rng = Prng.create 9 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "positive" true (Prng.exponential rng 0.5 >= 0.0)
  done

let test_prng_exponential_mean () =
  let rng = Prng.create 11 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.exponential rng 2.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 2.0" true (mean > 1.9 && mean < 2.1)

let test_prng_pareto_min () =
  let rng = Prng.create 13 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "at least xmin" true (Prng.pareto rng ~alpha:1.2 ~xmin:100.0 >= 100.0)
  done

let test_prng_shuffle_permutation () =
  let rng = Prng.create 5 in
  let arr = Array.init 50 (fun i -> i) in
  Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_prng_split_independent () =
  let a = Prng.create 42 in
  let b = Prng.split a in
  Alcotest.(check bool) "split streams differ" false (Prng.next_int64 a = Prng.next_int64 b)

let test_heap_orders () =
  let h = Heap.create () in
  List.iter (fun (p, v) -> Heap.push h p v) [ (3.0, "c"); (1.0, "a"); (2.0, "b") ];
  let pops = List.init 3 (fun _ -> snd (Option.get (Heap.pop h))) in
  Alcotest.(check (list string)) "ascending" [ "a"; "b"; "c" ] pops

let test_heap_stable_on_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h 1.0 v) [ "first"; "second"; "third" ];
  let pops = List.init 3 (fun _ -> snd (Option.get (Heap.pop h))) in
  Alcotest.(check (list string)) "insertion order" [ "first"; "second"; "third" ] pops

let test_heap_empty () =
  let h : int Heap.t = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check bool) "pop none" true (Heap.pop h = None);
  Alcotest.(check bool) "peek none" true (Heap.peek h = None)

let test_heap_interleaved () =
  let h = Heap.create () in
  Heap.push h 5.0 5;
  Heap.push h 1.0 1;
  Alcotest.(check bool) "pop 1" true (Heap.pop h = Some (1.0, 1));
  Heap.push h 3.0 3;
  Heap.push h 0.5 0;
  Alcotest.(check bool) "pop 0" true (Heap.pop h = Some (0.5, 0));
  Alcotest.(check bool) "pop 3" true (Heap.pop h = Some (3.0, 3));
  Alcotest.(check bool) "pop 5" true (Heap.pop h = Some (5.0, 5))

let heap_sort_prop =
  QCheck.Test.make ~name:"heap pops in nondecreasing priority order" ~count:200
    QCheck.(list (pair (float_bound_inclusive 1000.0) small_int))
    (fun items ->
      let h = Heap.create () in
      List.iter (fun (p, v) -> Heap.push h p v) items;
      let rec drain last =
        match Heap.pop h with
        | None -> true
        | Some (p, _) -> p >= last && drain p
      in
      drain neg_infinity)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  check_float "mean" 2.5 (Stats.mean s);
  check_float "min" 1.0 (Stats.min_value s);
  check_float "max" 4.0 (Stats.max_value s);
  Alcotest.(check int) "count" 4 (Stats.count s)

let test_stats_empty () =
  let s = Stats.create () in
  check_float "mean 0" 0.0 (Stats.mean s);
  check_float "p50 0" 0.0 (Stats.percentile s 50.0);
  Alcotest.(check (list (pair (float 0.) (float 0.)))) "cdf empty" [] (Stats.cdf s ~points:5)

let test_stats_percentile () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add s (float_of_int i)
  done;
  check_float "p50" 50.0 (Stats.percentile s 50.0);
  check_float "p90" 90.0 (Stats.percentile s 90.0);
  check_float "p100" 100.0 (Stats.percentile s 100.0);
  check_float "p1" 1.0 (Stats.percentile s 1.0)

let test_stats_percentile_after_add () =
  (* The sorted cache must invalidate on new samples. *)
  let s = Stats.create () in
  Stats.add s 10.0;
  ignore (Stats.percentile s 50.0);
  Stats.add s 1.0;
  check_float "p1 updated" 1.0 (Stats.percentile s 1.0)

let test_stats_fraction_at_least () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  check_float "half >= 3" 0.5 (Stats.fraction_at_least s 3.0);
  check_float "all >= 0" 1.0 (Stats.fraction_at_least s 0.0);
  check_float "none >= 5" 0.0 (Stats.fraction_at_least s 5.0)

let test_stats_cdf_monotone () =
  let s = Stats.create () in
  let rng = Prng.create 17 in
  for _ = 1 to 500 do
    Stats.add s (Prng.float rng 100.0)
  done;
  let cdf = Stats.cdf s ~points:20 in
  Alcotest.(check int) "20 points" 20 (List.length cdf);
  let rec monotone = function
    | (v1, f1) :: ((v2, f2) :: _ as rest) -> v1 <= v2 && f1 <= f2 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (monotone cdf)

let test_stats_stddev () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check (float 0.01)) "sample stddev" 2.138 (Stats.stddev s)

let test_ewma_first_value () =
  let e = Ewma.create ~alpha:0.5 in
  check_float "first observation" 10.0 (Ewma.update e 10.0)

let test_ewma_converges () =
  let e = Ewma.create ~alpha:0.5 in
  ignore (Ewma.update e 0.0);
  for _ = 1 to 30 do
    ignore (Ewma.update e 100.0)
  done;
  Alcotest.(check bool) "converges to 100" true (Ewma.value e > 99.9)

let test_ewma_weighting () =
  let e = Ewma.create ~alpha:0.3 in
  ignore (Ewma.update e 10.0);
  check_float "weighted" (0.3 *. 20.0 +. 0.7 *. 10.0) (Ewma.update e 20.0)

let test_ewma_reset () =
  let e = Ewma.create ~alpha:0.5 in
  ignore (Ewma.update e 50.0);
  Ewma.reset e;
  check_float "reset to 0" 0.0 (Ewma.value e);
  check_float "first again" 7.0 (Ewma.update e 7.0)

let test_ewma_bad_alpha () =
  Alcotest.check_raises "alpha 0" (Invalid_argument "Ewma.create: alpha out of (0,1]")
    (fun () -> ignore (Ewma.create ~alpha:0.0))

let test_strutil_basics () =
  Alcotest.(check bool) "starts" true (Strutil.starts_with ~prefix:"foo" "foobar");
  Alcotest.(check bool) "not starts" false (Strutil.starts_with ~prefix:"bar" "foobar");
  Alcotest.(check bool) "ends" true (Strutil.ends_with ~suffix:"bar" "foobar");
  Alcotest.(check bool) "prefix longer" false (Strutil.starts_with ~prefix:"foobarbaz" "foo")

let test_strutil_split_first () =
  Alcotest.(check (option (pair string string))) "split" (Some ("a", "b=c"))
    (Strutil.split_first '=' "a=b=c");
  Alcotest.(check (option (pair string string))) "absent" None (Strutil.split_first '=' "abc")

let test_strutil_index_sub () =
  Alcotest.(check (option int)) "found" (Some 3) (Strutil.index_sub "abcabc" ~sub:"ab" ~start:1);
  Alcotest.(check (option int)) "missing" None (Strutil.index_sub "abc" ~sub:"xyz" ~start:0);
  Alcotest.(check (option int)) "empty sub" (Some 2) (Strutil.index_sub "abc" ~sub:"" ~start:2)

let test_strutil_replace_all () =
  Alcotest.(check string) "replace" "x-x-x" (Strutil.replace_all "a-a-a" ~sub:"a" ~by:"x");
  Alcotest.(check string) "no match" "abc" (Strutil.replace_all "abc" ~sub:"zz" ~by:"x");
  Alcotest.(check string) "empty sub unchanged" "abc" (Strutil.replace_all "abc" ~sub:"" ~by:"x");
  Alcotest.(check string) "overlapping" "bb" (Strutil.replace_all "aaaa" ~sub:"aa" ~by:"b")

let test_cothread_sync () =
  let result = ref None in
  Cothread.spawn (fun () -> 1 + 2) ~on_done:(fun v -> result := Some v)
    ~on_error:(fun _ -> result := Some (-1));
  Alcotest.(check (option int)) "sync result" (Some 3) !result

let test_cothread_await_resume () =
  let resume = ref None in
  let result = ref None in
  Cothread.spawn
    (fun () ->
      let v = Cothread.await (fun k -> resume := Some k) in
      v * 2)
    ~on_done:(fun v -> result := Some v)
    ~on_error:(fun _ -> ());
  Alcotest.(check (option int)) "suspended" None !result;
  (Option.get !resume) 21;
  Alcotest.(check (option int)) "resumed" (Some 42) !result

let test_cothread_error_after_resume () =
  let resume = ref None in
  let error = ref false in
  Cothread.spawn
    (fun () ->
      let (_ : int) = Cothread.await (fun k -> resume := Some k) in
      failwith "boom")
    ~on_done:(fun _ -> ())
    ~on_error:(fun _ -> error := true);
  (Option.get !resume) 1;
  Alcotest.(check bool) "error routed" true !error

let test_cothread_double_resume_ignored () =
  let resume = ref None in
  let count = ref 0 in
  Cothread.spawn
    (fun () -> Cothread.await (fun k -> resume := Some k))
    ~on_done:(fun (_ : int) -> incr count)
    ~on_error:(fun _ -> ());
  let k = Option.get !resume in
  k 1;
  k 2;
  Alcotest.(check int) "resumed once" 1 !count

let test_cothread_nested_awaits () =
  let resumes = Queue.create () in
  let result = ref None in
  Cothread.spawn
    (fun () ->
      let a = Cothread.await (fun k -> Queue.add k resumes) in
      let b = Cothread.await (fun k -> Queue.add k resumes) in
      a + b)
    ~on_done:(fun v -> result := Some v)
    ~on_error:(fun _ -> ());
  (Queue.pop resumes) 10;
  (Queue.pop resumes) 32;
  Alcotest.(check (option int)) "both resumed" (Some 42) !result

let suite =
  [
    Alcotest.test_case "prng: deterministic from seed" `Quick test_prng_deterministic;
    Alcotest.test_case "prng: seeds differ" `Quick test_prng_seeds_differ;
    Alcotest.test_case "prng: int stays in bounds" `Quick test_prng_int_bounds;
    Alcotest.test_case "prng: int rejects non-positive bound" `Quick
      test_prng_int_rejects_nonpositive;
    Alcotest.test_case "prng: float stays in bounds" `Quick test_prng_float_bounds;
    Alcotest.test_case "prng: exponential non-negative" `Quick test_prng_exponential_positive;
    Alcotest.test_case "prng: exponential has requested mean" `Slow test_prng_exponential_mean;
    Alcotest.test_case "prng: pareto respects xmin" `Quick test_prng_pareto_min;
    Alcotest.test_case "prng: shuffle permutes" `Quick test_prng_shuffle_permutation;
    Alcotest.test_case "prng: split yields independent stream" `Quick test_prng_split_independent;
    Alcotest.test_case "heap: pops in priority order" `Quick test_heap_orders;
    Alcotest.test_case "heap: FIFO on equal priorities" `Quick test_heap_stable_on_ties;
    Alcotest.test_case "heap: empty behaviour" `Quick test_heap_empty;
    Alcotest.test_case "heap: interleaved push/pop" `Quick test_heap_interleaved;
    QCheck_alcotest.to_alcotest heap_sort_prop;
    Alcotest.test_case "stats: mean/min/max/count" `Quick test_stats_basic;
    Alcotest.test_case "stats: empty collection" `Quick test_stats_empty;
    Alcotest.test_case "stats: percentiles" `Quick test_stats_percentile;
    Alcotest.test_case "stats: percentile cache invalidation" `Quick
      test_stats_percentile_after_add;
    Alcotest.test_case "stats: fraction_at_least" `Quick test_stats_fraction_at_least;
    Alcotest.test_case "stats: cdf is monotone" `Quick test_stats_cdf_monotone;
    Alcotest.test_case "stats: sample stddev" `Quick test_stats_stddev;
    Alcotest.test_case "ewma: first value taken as-is" `Quick test_ewma_first_value;
    Alcotest.test_case "ewma: converges to constant input" `Quick test_ewma_converges;
    Alcotest.test_case "ewma: weighting formula" `Quick test_ewma_weighting;
    Alcotest.test_case "ewma: reset" `Quick test_ewma_reset;
    Alcotest.test_case "ewma: rejects bad alpha" `Quick test_ewma_bad_alpha;
    Alcotest.test_case "strutil: prefixes and suffixes" `Quick test_strutil_basics;
    Alcotest.test_case "strutil: split_first" `Quick test_strutil_split_first;
    Alcotest.test_case "strutil: index_sub" `Quick test_strutil_index_sub;
    Alcotest.test_case "strutil: replace_all" `Quick test_strutil_replace_all;
    Alcotest.test_case "cothread: synchronous completion" `Quick test_cothread_sync;
    Alcotest.test_case "cothread: await suspends and resumes" `Quick test_cothread_await_resume;
    Alcotest.test_case "cothread: exception after resume" `Quick test_cothread_error_after_resume;
    Alcotest.test_case "cothread: double resume ignored" `Quick
      test_cothread_double_resume_ignored;
    Alcotest.test_case "cothread: nested awaits" `Quick test_cothread_nested_awaits;
  ]
