test/test_json.ml: Alcotest Core Hostcall Json List Platform_v Printf QCheck QCheck_alcotest
