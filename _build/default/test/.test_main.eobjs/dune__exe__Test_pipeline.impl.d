test/test_pipeline.ml: Alcotest Body Core Esi Hashtbl Ip List Message Nkp Option Pipeline Stage Url Walls
