test/test_extensions.ml: Alcotest Core Extensions List
