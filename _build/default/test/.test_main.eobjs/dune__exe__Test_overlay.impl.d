test/test_overlay.ml: Alcotest Core Dht Hashtbl List Node_id Option Printf QCheck QCheck_alcotest Redirector Ring
