test/test_cache.ml: Alcotest Body Core Http_cache List Memo_cache Message Option QCheck QCheck_alcotest String
