test/test_util.ml: Alcotest Array Core Cothread Ewma Heap List Option Prng QCheck QCheck_alcotest Queue Stats Strutil
