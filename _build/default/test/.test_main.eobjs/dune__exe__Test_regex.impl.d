test/test_regex.ml: Alcotest Core Gen List Option QCheck QCheck_alcotest Regex
