test/test_crypto.ml: Alcotest Char Core Gen Hmac List Printf QCheck QCheck_alcotest Sha256 String
