test/test_integrity.ml: Alcotest Core Http_date Integrity Message Printf QCheck QCheck_alcotest Verifier
