test/test_script.ml: Alcotest Builtins Context_pool Core Gen Interp Lexer List Option Parser Printf QCheck QCheck_alcotest Value
