test/test_replication.ml: Alcotest Array Core List Message_bus Printf QCheck QCheck_alcotest Registration Replication Store String
