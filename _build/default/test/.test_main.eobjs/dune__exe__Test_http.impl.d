test/test_http.ml: Alcotest Body Cache_control Codec Cookie Core Gen Headers Http_date Ip List Message Method_ Option QCheck QCheck_alcotest Range Result Status String Url
