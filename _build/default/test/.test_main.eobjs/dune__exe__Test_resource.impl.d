test/test_resource.ml: Accounting Alcotest Core Float Hashtbl List Monitor Option Printf QCheck QCheck_alcotest Resource
