test/test_workload.ml: Alcotest Core Driver Flashcrowd List Logreplay Message Printf Simm Specweb Static_page String Url
