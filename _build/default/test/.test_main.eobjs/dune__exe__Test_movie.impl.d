test/test_movie.ml: Alcotest Core Hostcall Image List Movie Option Platform_v String
