test/test_node.ml: Alcotest Body Cluster Config Core List Message Node Origin String
