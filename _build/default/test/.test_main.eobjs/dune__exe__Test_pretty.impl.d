test/test_pretty.ml: Alcotest Ast Builtins Core Interp List Pretty QCheck QCheck_alcotest String Value
