test/test_vocab.ml: Alcotest Bytes Core Eval_v Hashtbl Hostcall Http_v Image Interp List Platform_v QCheck QCheck_alcotest String Value Xml
