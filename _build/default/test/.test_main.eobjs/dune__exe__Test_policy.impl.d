test/test_policy.ml: Alcotest Array Core Decision_tree Ip List Message Method_ Option Policy Printf QCheck QCheck_alcotest Script_bridge
