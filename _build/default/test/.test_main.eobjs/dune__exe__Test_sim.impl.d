test/test_sim.ml: Alcotest Body Core Httpd List Message Net Option Sim Trace Url
