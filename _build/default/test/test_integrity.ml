(* Content integrity (§6): the X-Content-SHA256 / X-Signature headers
   and the probabilistic verification model. *)

open Core.Integrity
open Core.Http

let signed_response ?(body = "the content") ~expires_at () =
  let r =
    Message.response
      ~headers:
        [ ("Content-Type", "text/html"); ("Expires", Http_date.format expires_at) ]
      ~body ()
  in
  (match Integrity.sign ~key:"publisher-key" r with
   | Ok () -> ()
   | Error v -> Alcotest.failf "sign failed: %s" (Integrity.violation_to_string v));
  r

let test_sign_sets_headers () =
  let r = signed_response ~expires_at:1000.0 () in
  Alcotest.(check bool) "hash header" true (Message.resp_header r "X-Content-SHA256" <> None);
  Alcotest.(check bool) "signature header" true (Message.resp_header r "X-Signature" <> None)

let test_verify_accepts_fresh () =
  let r = signed_response ~expires_at:1000.0 () in
  Alcotest.(check bool) "ok" true (Integrity.verify ~key:"publisher-key" ~now:500.0 r = Ok ())

let test_verify_detects_tampered_body () =
  let r = signed_response ~expires_at:1000.0 () in
  Message.set_body r "falsified medical study results";
  Alcotest.(check bool) "hash mismatch" true
    (Integrity.verify ~key:"publisher-key" ~now:500.0 r = Error Integrity.Hash_mismatch)

let test_verify_detects_rehashed_body () =
  (* A smarter attacker recomputes the hash — the signature catches it. *)
  let r = signed_response ~expires_at:1000.0 () in
  Message.set_body r "falsified";
  Message.set_resp_header r "X-Content-SHA256" (Core.Crypto.Sha256.digest_hex "falsified");
  Alcotest.(check bool) "bad signature" true
    (Integrity.verify ~key:"publisher-key" ~now:500.0 r = Error Integrity.Bad_signature)

let test_verify_detects_extended_freshness () =
  (* A node may not extend a cached object's life: Expires is signed. *)
  let r = signed_response ~expires_at:1000.0 () in
  Message.set_resp_header r "Expires" (Http_date.format 999_999.0);
  Alcotest.(check bool) "freshness bound" true
    (Integrity.verify ~key:"publisher-key" ~now:500.0 r = Error Integrity.Bad_signature)

let test_verify_stale () =
  let r = signed_response ~expires_at:1000.0 () in
  Alcotest.(check bool) "stale" true
    (Integrity.verify ~key:"publisher-key" ~now:1001.0 r = Error Integrity.Stale)

let test_verify_wrong_key () =
  let r = signed_response ~expires_at:1000.0 () in
  Alcotest.(check bool) "wrong key" true
    (Integrity.verify ~key:"other" ~now:500.0 r = Error Integrity.Bad_signature)

let test_verify_missing_headers () =
  let r = signed_response ~expires_at:1000.0 () in
  Integrity.strip r;
  Alcotest.(check bool) "missing" true
    (Integrity.verify ~key:"publisher-key" ~now:500.0 r = Error Integrity.Missing_headers)

let test_sign_requires_absolute_expiry () =
  (* §6: "absolute cache expiration times instead of the relative times
     introduced in HTTP/1.1". *)
  let relative =
    Message.response ~headers:[ ("Cache-Control", "max-age=300") ] ~body:"x" ()
  in
  Alcotest.(check bool) "max-age rejected" true
    (Integrity.sign ~key:"k" relative = Error Integrity.Relative_expiry);
  let none = Message.response ~body:"x" () in
  Alcotest.(check bool) "no Expires rejected" true
    (Integrity.sign ~key:"k" none = Error Integrity.Relative_expiry)

let sign_verify_roundtrip_prop =
  QCheck.Test.make ~name:"integrity: sign/verify roundtrip on arbitrary bodies" ~count:100
    QCheck.(string_of_size (QCheck.Gen.int_bound 500))
    (fun body ->
      let r =
        Message.response ~headers:[ ("Expires", Http_date.format 2000.0) ] ~body ()
      in
      Integrity.sign ~key:"k" r = Ok () && Integrity.verify ~key:"k" ~now:100.0 r = Ok ())

let tamper_detected_prop =
  QCheck.Test.make ~name:"integrity: any body change is detected" ~count:100
    QCheck.(pair (string_of_size (QCheck.Gen.int_range 1 200)) (string_of_size (QCheck.Gen.int_range 1 200)))
    (fun (body, tampered) ->
      body = tampered
      ||
      let r = Message.response ~headers:[ ("Expires", Http_date.format 2000.0) ] ~body () in
      ignore (Integrity.sign ~key:"k" r);
      Message.set_body r tampered;
      Integrity.verify ~key:"k" ~now:100.0 r <> Ok ())

let test_verifier_match_no_report () =
  let v = Verifier.create () in
  Verifier.register_node v "nk1";
  Alcotest.(check bool) "match" true (Verifier.check v ~node:"nk1" ~original:"x" ~reexecuted:"x" = `Match);
  Alcotest.(check int) "no reports" 0 (Verifier.reports v ~node:"nk1")

let test_verifier_eviction_threshold () =
  let v = Verifier.create ~eviction_threshold:3 () in
  Verifier.register_node v "cheat";
  for _ = 1 to 2 do
    ignore (Verifier.check v ~node:"cheat" ~original:"a" ~reexecuted:"b")
  done;
  Alcotest.(check bool) "still member" true (Verifier.is_member v "cheat");
  ignore (Verifier.check v ~node:"cheat" ~original:"a" ~reexecuted:"b");
  Alcotest.(check bool) "evicted" false (Verifier.is_member v "cheat");
  Alcotest.(check (list string)) "eviction list" [ "cheat" ] (Verifier.evicted v)

let test_verifier_sampling_fraction () =
  let v = Verifier.create ~sample_fraction:0.2 () in
  let rng = Core.Util.Prng.create 123 in
  let sampled = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Verifier.should_sample v ~rng then incr sampled
  done;
  let fraction = float_of_int !sampled /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "fraction %.3f near 0.2" fraction) true
    (fraction > 0.18 && fraction < 0.22)

let test_verifier_detection_probability () =
  (* A node that tampers with every response is caught after about
     threshold/fraction observations. *)
  let v = Verifier.create ~sample_fraction:0.1 ~eviction_threshold:3 () in
  Verifier.register_node v "tamper";
  let rng = Core.Util.Prng.create 7 in
  let observations = ref 0 in
  while Verifier.is_member v "tamper" && !observations < 10_000 do
    incr observations;
    if Verifier.should_sample v ~rng then
      ignore (Verifier.check v ~node:"tamper" ~original:"good" ~reexecuted:"bad")
  done;
  Alcotest.(check bool) "eventually evicted" false (Verifier.is_member v "tamper");
  (* Expected ~30 observations; allow generous slack but require it is
     far from the 10k cap. *)
  Alcotest.(check bool)
    (Printf.sprintf "caught in %d observations" !observations)
    true (!observations < 500)

let test_verifier_bad_fraction () =
  Alcotest.check_raises "fraction > 1"
    (Invalid_argument "Verifier.create: sample_fraction out of [0,1]") (fun () ->
      ignore (Verifier.create ~sample_fraction:1.5 ()))

let suite =
  [
    Alcotest.test_case "sign sets both headers" `Quick test_sign_sets_headers;
    Alcotest.test_case "verify accepts untampered fresh content" `Quick
      test_verify_accepts_fresh;
    Alcotest.test_case "tampered body detected" `Quick test_verify_detects_tampered_body;
    Alcotest.test_case "rehashed body caught by signature" `Quick
      test_verify_detects_rehashed_body;
    Alcotest.test_case "extended freshness caught" `Quick
      test_verify_detects_extended_freshness;
    Alcotest.test_case "stale content rejected" `Quick test_verify_stale;
    Alcotest.test_case "wrong key rejected" `Quick test_verify_wrong_key;
    Alcotest.test_case "stripped headers detected" `Quick test_verify_missing_headers;
    Alcotest.test_case "signing requires absolute Expires" `Quick
      test_sign_requires_absolute_expiry;
    QCheck_alcotest.to_alcotest sign_verify_roundtrip_prop;
    QCheck_alcotest.to_alcotest tamper_detected_prop;
    Alcotest.test_case "verifier: matches file no report" `Quick test_verifier_match_no_report;
    Alcotest.test_case "verifier: eviction threshold" `Quick test_verifier_eviction_threshold;
    Alcotest.test_case "verifier: sampling fraction" `Slow test_verifier_sampling_fraction;
    Alcotest.test_case "verifier: persistent tamperer is caught" `Quick
      test_verifier_detection_probability;
    Alcotest.test_case "verifier: rejects bad fraction" `Quick test_verifier_bad_fraction;
  ]
