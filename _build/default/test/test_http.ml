(* The HTTP substrate: methods, headers, URLs, IPs, cookies,
   cache-control, dates, bodies, messages, wire codec. *)

open Core.Http

let test_method_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check string) s s (Method_.to_string (Method_.of_string s)))
    [ "GET"; "HEAD"; "POST"; "PUT"; "DELETE"; "OPTIONS"; "TRACE" ];
  Alcotest.(check string) "unknown preserved" "PATCH" (Method_.to_string (Method_.of_string "PATCH"))

let test_method_case_insensitive () =
  Alcotest.(check bool) "get = GET" true (Method_.equal (Method_.of_string "get") Method_.GET)

let test_method_safety () =
  Alcotest.(check bool) "GET safe" true (Method_.is_safe Method_.GET);
  Alcotest.(check bool) "POST unsafe" false (Method_.is_safe Method_.POST)

let test_status_reasons () =
  Alcotest.(check string) "200" "OK" (Status.reason 200);
  Alcotest.(check string) "404" "Not Found" (Status.reason 404);
  Alcotest.(check string) "503" "Service Unavailable" (Status.reason 503);
  Alcotest.(check string) "unknown" "Unknown" (Status.reason 599)

let test_status_classes () =
  Alcotest.(check bool) "200 success" true (Status.is_success 200);
  Alcotest.(check bool) "302 redirect" true (Status.is_redirect 302);
  Alcotest.(check bool) "404 client" true (Status.is_client_error 404);
  Alcotest.(check bool) "500 server" true (Status.is_server_error 500)

let test_headers_case_insensitive () =
  let h = Headers.of_list [ ("Content-Type", "text/html") ] in
  Alcotest.(check (option string)) "lowercase get" (Some "text/html")
    (Headers.get h "content-type");
  Alcotest.(check (option string)) "mixed get" (Some "text/html")
    (Headers.get h "CONTENT-TYPE")

let test_headers_set_replaces () =
  let h = Headers.of_list [ ("X-A", "1"); ("X-B", "2"); ("x-a", "3") ] in
  let h = Headers.set h "X-A" "9" in
  Alcotest.(check (list string)) "single value" [ "9" ] (Headers.get_all h "x-a");
  (* position of the first occurrence is kept *)
  Alcotest.(check (list (pair string string))) "order kept"
    [ ("X-A", "9"); ("X-B", "2") ]
    (Headers.to_list h)

let test_headers_add_accumulates () =
  let h = Headers.add (Headers.add Headers.empty "Set-Cookie" "a=1") "Set-Cookie" "b=2" in
  Alcotest.(check (list string)) "both" [ "a=1"; "b=2" ] (Headers.get_all h "set-cookie")

let test_headers_remove () =
  let h = Headers.of_list [ ("A", "1"); ("B", "2") ] in
  let h = Headers.remove h "a" in
  Alcotest.(check bool) "gone" false (Headers.mem h "A");
  Alcotest.(check bool) "kept" true (Headers.mem h "B")

let test_url_parse_full () =
  let u = Url.parse_exn "http://www.Example.EDU:8080/a/b?x=1&y=2" in
  Alcotest.(check string) "host lowercased" "www.example.edu" u.Url.host;
  Alcotest.(check int) "port" 8080 u.Url.port;
  Alcotest.(check string) "path" "/a/b" u.Url.path;
  Alcotest.(check (option string)) "query x" (Some "1") (Url.query_get u "x");
  Alcotest.(check (option string)) "query y" (Some "2") (Url.query_get u "y")

let test_url_parse_schemeless_and_bare () =
  let u = Url.parse_exn "example.org" in
  Alcotest.(check string) "default path" "/" u.Url.path;
  Alcotest.(check int) "default port" 80 u.Url.port;
  Alcotest.(check string) "default scheme" "http" u.Url.scheme

let test_url_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Url.to_string (Url.parse_exn s)))
    [
      "http://example.org/";
      "http://example.org/a/b/c";
      "http://example.org:8080/x?k=v";
      "https://a.b.c/d?x=1&y=2";
    ]

let test_url_errors () =
  List.iter
    (fun s ->
      match Url.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse failure for %S" s)
    [ ""; "http://"; "http://host:notaport/" ]

let test_url_nakika_rewriting () =
  let u = Url.parse_exn "http://www.example.edu/page" in
  let nk = Url.to_nakika u in
  Alcotest.(check string) "suffix appended" "www.example.edu.nakika.net" nk.Url.host;
  Alcotest.(check string) "idempotent" "www.example.edu.nakika.net"
    (Url.to_nakika nk).Url.host;
  (match Url.of_nakika nk with
   | Some orig -> Alcotest.(check string) "stripped" "www.example.edu" orig.Url.host
   | None -> Alcotest.fail "of_nakika failed");
  Alcotest.(check bool) "plain URL is not nakika" true (Url.of_nakika u = None)

let test_url_prefix_matching () =
  let u = Url.parse_exn "http://med.nyu.edu/library/page.html" in
  Alcotest.(check bool) "host only" true (Url.matches_prefix u "med.nyu.edu");
  Alcotest.(check bool) "host+path" true (Url.matches_prefix u "med.nyu.edu/library");
  Alcotest.(check bool) "wrong path" false (Url.matches_prefix u "med.nyu.edu/admin");
  Alcotest.(check bool) "parent domain" true (Url.matches_prefix u "nyu.edu");
  Alcotest.(check bool) "not a label boundary" false (Url.matches_prefix u "yu.edu");
  Alcotest.(check bool) "other host" false (Url.matches_prefix u "pitt.edu")

let test_url_site () =
  Alcotest.(check string) "default port" "example.org"
    (Url.site (Url.parse_exn "http://example.org/x"));
  Alcotest.(check string) "explicit port" "example.org:8080"
    (Url.site (Url.parse_exn "http://example.org:8080/x"))

let test_ip_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Ip.to_string (Ip.of_string_exn s)))
    [ "0.0.0.0"; "127.0.0.1"; "10.20.30.40"; "255.255.255.255" ]

let test_ip_errors () =
  List.iter
    (fun s ->
      match Ip.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected failure for %S" s)
    [ "256.1.1.1"; "1.2.3"; "a.b.c.d"; "1.2.3.4.5"; "" ]

let test_cidr () =
  let c = Result.get_ok (Ip.cidr_of_string "10.0.0.0/8") in
  Alcotest.(check bool) "inside" true (Ip.cidr_contains c (Ip.of_string_exn "10.99.1.2"));
  Alcotest.(check bool) "outside" false (Ip.cidr_contains c (Ip.of_string_exn "11.0.0.1"));
  let host = Result.get_ok (Ip.cidr_of_string "192.168.1.5") in
  Alcotest.(check bool) "bare ip is /32" true
    (Ip.cidr_contains host (Ip.of_string_exn "192.168.1.5"));
  Alcotest.(check bool) "/32 excludes neighbour" false
    (Ip.cidr_contains host (Ip.of_string_exn "192.168.1.6"));
  let all = Result.get_ok (Ip.cidr_of_string "0.0.0.0/0") in
  Alcotest.(check bool) "/0 matches everything" true
    (Ip.cidr_contains all (Ip.of_string_exn "203.0.113.9"))

let test_client_matches () =
  let client = { Ip.ip = Ip.of_string_exn "128.122.1.1"; hostname = Some "cs.nyu.edu" } in
  Alcotest.(check bool) "cidr" true (Ip.client_matches ~pattern:"128.122.0.0/16" client);
  Alcotest.(check bool) "domain suffix" true (Ip.client_matches ~pattern:"nyu.edu" client);
  Alcotest.(check bool) "exact domain" true (Ip.client_matches ~pattern:"cs.nyu.edu" client);
  Alcotest.(check bool) "other domain" false (Ip.client_matches ~pattern:"pitt.edu" client);
  Alcotest.(check bool) "no hostname" false
    (Ip.client_matches ~pattern:"nyu.edu" { client with hostname = None })

let test_cookie_parse () =
  Alcotest.(check (list (pair string string))) "pairs"
    [ ("session", "abc"); ("lang", "en") ]
    (Cookie.parse "session=abc; lang=en");
  Alcotest.(check (list (pair string string))) "bare flag" [ ("flag", "") ] (Cookie.parse "flag")

let test_cookie_set () =
  Alcotest.(check string) "full" "sid=1; Path=/; Max-Age=60; HttpOnly"
    (Cookie.set_cookie ~path:"/" ~max_age:60 ~http_only:true ~name:"sid" ~value:"1" ());
  Alcotest.(check (option (pair string string))) "parse back" (Some ("sid", "1"))
    (Cookie.parse_set_cookie "sid=1; Path=/; HttpOnly")

let test_cache_control_parse () =
  let cc = Cache_control.parse "max-age=300, public" in
  Alcotest.(check (option int)) "max-age" (Some 300) cc.Cache_control.max_age;
  Alcotest.(check bool) "public" true cc.Cache_control.public;
  Alcotest.(check bool) "cacheable" true (Cache_control.cacheable cc)

let test_cache_control_uncacheable () =
  List.iter
    (fun v ->
      Alcotest.(check bool) v false (Cache_control.cacheable (Cache_control.parse v)))
    [ "no-store"; "private"; "no-cache"; "max-age=300, no-store" ]

let test_cache_control_expiry_priority () =
  let now = 1000.0 in
  let exp cc_str expires =
    Cache_control.expiry ~now ~date:(Some now)
      ~cache_control:(Cache_control.parse cc_str) ~expires
  in
  Alcotest.(check (option (float 0.001))) "s-maxage wins" (Some 1010.0)
    (exp "s-maxage=10, max-age=100" (Some 2000.0));
  Alcotest.(check (option (float 0.001))) "max-age beats expires" (Some 1100.0)
    (exp "max-age=100" (Some 2000.0));
  Alcotest.(check (option (float 0.001))) "expires fallback" (Some 2000.0)
    (exp "" (Some 2000.0));
  Alcotest.(check (option (float 0.001))) "nothing" None (exp "" None)

let test_http_date_roundtrip () =
  List.iter
    (fun t ->
      match Http_date.parse (Http_date.format t) with
      | Some t' -> Alcotest.(check (float 0.5)) "roundtrip" t t'
      | None -> Alcotest.failf "failed to parse %s" (Http_date.format t))
    [ 0.0; 1_136_073_600.0; 1_600_000_000.0; 86_399.0; 86_400.0 ]

let test_http_date_epoch () =
  Alcotest.(check string) "epoch" "Thu, 01 Jan 1970 00:00:00 GMT" (Http_date.format 0.0)

let test_http_date_known () =
  (* RFC 2616's example date. *)
  Alcotest.(check (option (float 0.5))) "rfc example" (Some 784111777.0)
    (Http_date.parse "Sun, 06 Nov 1994 08:49:37 GMT")

let test_http_date_bad () =
  List.iter
    (fun s -> Alcotest.(check bool) s true (Http_date.parse s = None))
    [ "not a date"; "Sun, 06 Nov 1994"; "Sun, 06 Xxx 1994 08:49:37 GMT" ]

let test_body_chunks () =
  let b = Body.of_chunks [ "hello "; ""; "world" ] in
  Alcotest.(check int) "length" 11 (Body.length b);
  Alcotest.(check string) "full" "hello world" (Body.to_string b);
  let r = Body.reader b in
  Alcotest.(check (option string)) "chunk 1" (Some "hello ") (Body.read r);
  Alcotest.(check (option string)) "chunk 2" (Some "world") (Body.read r);
  Alcotest.(check (option string)) "eof" None (Body.read r)

let test_body_read_size () =
  let b = Body.of_string "abcdefgh" in
  let r = Body.reader b in
  Alcotest.(check (option string)) "3 bytes" (Some "abc") (Body.read_size r 3);
  Alcotest.(check (option string)) "3 more" (Some "def") (Body.read_size r 3);
  Alcotest.(check (option string)) "tail" (Some "gh") (Body.read_size r 3);
  Alcotest.(check (option string)) "eof" None (Body.read_size r 3)

let test_message_request () =
  let r = Message.request ~meth:Method_.POST ~headers:[ ("X", "1") ] ~body:"data"
      "http://example.org/p" in
  Alcotest.(check string) "host" "example.org" (Message.host r);
  Alcotest.(check (option string)) "header" (Some "1") (Message.req_header r "x");
  Alcotest.(check string) "body" "data" (Body.to_string r.Message.body)

let test_message_response_content_length () =
  let r = Message.response ~body:"hello" () in
  Alcotest.(check (option string)) "auto content-length" (Some "5")
    (Message.resp_header r "Content-Length");
  Message.set_body r ~content_type:"text/plain" "much longer body";
  Alcotest.(check (option string)) "updated" (Some "16")
    (Message.resp_header r "Content-Length");
  Alcotest.(check (option string)) "content type" (Some "text/plain") (Message.content_type r)

let test_message_cacheable () =
  let req = Message.request "http://e.org/" in
  let ok = Message.response ~headers:[ ("Cache-Control", "max-age=60") ] ~body:"x" () in
  Alcotest.(check bool) "cacheable" true (Message.cacheable req ok);
  let nostore = Message.response ~headers:[ ("Cache-Control", "no-store") ] ~body:"x" () in
  Alcotest.(check bool) "no-store" false (Message.cacheable req nostore);
  let post = Message.request ~meth:Method_.POST "http://e.org/" in
  Alcotest.(check bool) "POST not cacheable" false (Message.cacheable post ok);
  let err = Message.error_response 500 in
  Alcotest.(check bool) "500 not cacheable" false (Message.cacheable req err)

let test_message_copy_isolation () =
  let r = Message.response ~body:"orig" () in
  let c = Message.copy_response r in
  Message.set_body c "changed";
  Alcotest.(check string) "original intact" "orig" (Body.to_string r.Message.resp_body)

let test_codec_request_roundtrip () =
  let r =
    Message.request ~meth:Method_.POST ~headers:[ ("X-Test", "yes") ] ~body:"payload"
      "http://example.org:8080/path?q=1"
  in
  match Codec.decode_request (Codec.encode_request r) with
  | Error e -> Alcotest.fail e
  | Ok r' ->
    Alcotest.(check bool) "method" true (Method_.equal r.Message.meth r'.Message.meth);
    Alcotest.(check bool) "url" true (Url.equal r.Message.url r'.Message.url);
    Alcotest.(check (option string)) "header" (Some "yes") (Message.req_header r' "x-test");
    Alcotest.(check string) "body" "payload" (Body.to_string r'.Message.body)

let test_codec_response_roundtrip () =
  let r = Message.response ~status:404 ~headers:[ ("A", "b") ] ~body:"nope" () in
  match Codec.decode_response (Codec.encode_response r) with
  | Error e -> Alcotest.fail e
  | Ok r' ->
    Alcotest.(check int) "status" 404 r'.Message.status;
    Alcotest.(check string) "body" "nope" (Body.to_string r'.Message.resp_body)

let test_codec_malformed () =
  List.iter
    (fun s ->
      match Codec.decode_request s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected decode failure for %S" s)
    [ ""; "GET\r\n\r\n"; "GET http://x/ HTTP/1.1\r\nBadHeader\r\n\r\n" ]

let url_roundtrip_prop =
  QCheck.Test.make ~name:"url: to_string/parse roundtrip on generated urls" ~count:200
    QCheck.(
      quad (string_gen_of_size (Gen.return 5) (Gen.char_range 'a' 'z'))
        (int_range 1 65535)
        (string_gen_of_size (Gen.return 4) (Gen.char_range 'a' 'z'))
        (string_gen_of_size (Gen.return 3) (Gen.char_range 'a' 'z')))
    (fun (host, port, seg, qval) ->
      let u = Url.make ~host ~port ~path:("/" ^ seg) ~query:[ ("k", qval) ] () in
      Url.equal u (Url.parse_exn (Url.to_string u)))



let test_range_parse () =
  let check s expected =
    Alcotest.(check bool) s true
      (match (Range.parse s, expected) with
       | Some r, Some (f, l) -> r.Range.first = f && r.Range.last = l
       | None, None -> true
       | _ -> false)
  in
  check "bytes=0-499" (Some (Some 0, Some 499));
  check "bytes=500-" (Some (Some 500, None));
  check "bytes=-200" (Some (None, Some 200));
  check "bytes=-" None;
  check "chunks=1-2" None;
  check "bytes=0-99,200-299" None;
  check "bytes=a-b" None

let test_range_resolve () =
  let r first last = { Range.first; last } in
  Alcotest.(check (option (pair int int))) "plain" (Some (10, 19))
    (Range.resolve (r (Some 10) (Some 19)) ~length:100);
  Alcotest.(check (option (pair int int))) "clamped" (Some (90, 99))
    (Range.resolve (r (Some 90) (Some 1000)) ~length:100);
  Alcotest.(check (option (pair int int))) "open end" (Some (50, 99))
    (Range.resolve (r (Some 50) None) ~length:100);
  Alcotest.(check (option (pair int int))) "suffix" (Some (80, 99))
    (Range.resolve (r None (Some 20)) ~length:100);
  Alcotest.(check (option (pair int int))) "suffix longer than body" (Some (0, 99))
    (Range.resolve (r None (Some 500)) ~length:100);
  Alcotest.(check (option (pair int int))) "past the end" None
    (Range.resolve (r (Some 100) None) ~length:100);
  Alcotest.(check (option (pair int int))) "inverted" None
    (Range.resolve (r (Some 5) (Some 2)) ~length:100)

let test_range_apply () =
  let resp = Message.response ~headers:[ ("Content-Type", "video/nkv") ] ~body:"0123456789" () in
  let r = Option.get (Range.parse "bytes=2-5") in
  Alcotest.(check bool) "applied" true (Range.apply r resp);
  Alcotest.(check int) "206" 206 resp.Message.status;
  Alcotest.(check string) "slice" "2345" (Body.to_string resp.Message.resp_body);
  Alcotest.(check (option string)) "content-range" (Some "bytes 2-5/10")
    (Message.resp_header resp "Content-Range");
  Alcotest.(check (option string)) "content-length" (Some "4")
    (Message.resp_header resp "Content-Length");
  (* Not re-applicable to a 206, and unsatisfiable ranges leave errors alone. *)
  Alcotest.(check bool) "not reapplied" false (Range.apply r resp);
  let err = Message.error_response 404 in
  Alcotest.(check bool) "404 untouched" false (Range.apply r err)

let codec_roundtrip_prop =
  QCheck.Test.make ~name:"codec: response encode/decode roundtrip" ~count:150
    QCheck.(
      triple (int_range 100 599)
        (small_list
           (pair
              (string_gen_of_size (Gen.int_range 1 10) (Gen.char_range 'A' 'Z'))
              (string_gen_of_size (Gen.int_range 0 20) (Gen.char_range 'a' 'z'))))
        (string_gen_of_size (Gen.int_bound 200) (Gen.char_range ' ' 'z')))
    (fun (status, headers, body) ->
      let r = Message.response ~status ~headers ~body () in
      match Codec.decode_response (Codec.encode_response r) with
      | Ok r' ->
        r'.Message.status = status
        && Body.to_string r'.Message.resp_body = body
        && List.for_all
             (fun (k, v) -> Headers.get r'.Message.resp_headers k = Some v)
             (List.filteri
                (fun i (k, _) ->
                  (* first occurrence wins for duplicate names *)
                  List.for_all
                    (fun (k2, _) -> String.lowercase_ascii k2 <> String.lowercase_ascii k)
                    (List.filteri (fun j _ -> j < i) headers))
                headers)
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "method: roundtrip" `Quick test_method_roundtrip;
    Alcotest.test_case "method: case-insensitive" `Quick test_method_case_insensitive;
    Alcotest.test_case "method: safety classes" `Quick test_method_safety;
    Alcotest.test_case "status: reason phrases" `Quick test_status_reasons;
    Alcotest.test_case "status: classes" `Quick test_status_classes;
    Alcotest.test_case "headers: case-insensitive access" `Quick test_headers_case_insensitive;
    Alcotest.test_case "headers: set replaces all values" `Quick test_headers_set_replaces;
    Alcotest.test_case "headers: add accumulates" `Quick test_headers_add_accumulates;
    Alcotest.test_case "headers: remove" `Quick test_headers_remove;
    Alcotest.test_case "url: full parse" `Quick test_url_parse_full;
    Alcotest.test_case "url: schemeless and bare host" `Quick test_url_parse_schemeless_and_bare;
    Alcotest.test_case "url: roundtrip" `Quick test_url_roundtrip;
    Alcotest.test_case "url: malformed" `Quick test_url_errors;
    Alcotest.test_case "url: .nakika.net rewriting" `Quick test_url_nakika_rewriting;
    Alcotest.test_case "url: predicate prefix matching" `Quick test_url_prefix_matching;
    Alcotest.test_case "url: site identifier" `Quick test_url_site;
    Alcotest.test_case "ip: roundtrip" `Quick test_ip_roundtrip;
    Alcotest.test_case "ip: malformed" `Quick test_ip_errors;
    Alcotest.test_case "ip: CIDR containment" `Quick test_cidr;
    Alcotest.test_case "ip: client matching (Fig. 3 semantics)" `Quick test_client_matches;
    Alcotest.test_case "cookie: parse" `Quick test_cookie_parse;
    Alcotest.test_case "cookie: set-cookie" `Quick test_cookie_set;
    Alcotest.test_case "cache-control: parse" `Quick test_cache_control_parse;
    Alcotest.test_case "cache-control: uncacheable directives" `Quick
      test_cache_control_uncacheable;
    Alcotest.test_case "cache-control: expiry priority" `Quick test_cache_control_expiry_priority;
    Alcotest.test_case "http-date: roundtrip" `Quick test_http_date_roundtrip;
    Alcotest.test_case "http-date: epoch rendering" `Quick test_http_date_epoch;
    Alcotest.test_case "http-date: RFC 2616 example" `Quick test_http_date_known;
    Alcotest.test_case "http-date: malformed" `Quick test_http_date_bad;
    Alcotest.test_case "body: chunked reads" `Quick test_body_chunks;
    Alcotest.test_case "body: sized reads" `Quick test_body_read_size;
    Alcotest.test_case "message: request construction" `Quick test_message_request;
    Alcotest.test_case "message: content-length maintenance" `Quick
      test_message_response_content_length;
    Alcotest.test_case "message: cacheability" `Quick test_message_cacheable;
    Alcotest.test_case "message: copies are isolated" `Quick test_message_copy_isolation;
    Alcotest.test_case "codec: request roundtrip" `Quick test_codec_request_roundtrip;
    Alcotest.test_case "codec: response roundtrip" `Quick test_codec_response_roundtrip;
    Alcotest.test_case "codec: malformed input" `Quick test_codec_malformed;
    QCheck_alcotest.to_alcotest url_roundtrip_prop;
    QCheck_alcotest.to_alcotest codec_roundtrip_prop;
    Alcotest.test_case "range: parse" `Quick test_range_parse;
    Alcotest.test_case "range: resolve" `Quick test_range_resolve;
    Alcotest.test_case "range: apply to a response" `Quick test_range_apply;
  ]
