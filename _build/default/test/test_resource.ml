(* Congestion-based resource control (Fig. 6): accounting semantics,
   throttling proportional to contribution, top-offender termination. *)

open Core.Resource

let test_renewable_classification () =
  Alcotest.(check bool) "cpu" true (Resource.is_renewable Resource.Cpu);
  Alcotest.(check bool) "memory" true (Resource.is_renewable Resource.Memory);
  Alcotest.(check bool) "bandwidth" true (Resource.is_renewable Resource.Bandwidth);
  Alcotest.(check bool) "running time" false (Resource.is_renewable Resource.Running_time);
  Alcotest.(check bool) "bytes" false (Resource.is_renewable Resource.Bytes_transferred)

let test_charge_accumulates () =
  let a = Accounting.create () in
  Accounting.charge a ~site:"s" Resource.Cpu 1.0;
  Accounting.charge a ~site:"s" Resource.Cpu 2.0;
  Alcotest.(check (float 1e-9)) "interval sum" 3.0
    (Accounting.interval_consumption a ~site:"s" Resource.Cpu);
  Alcotest.(check (float 1e-9)) "total" 3.0 (Accounting.total_interval a Resource.Cpu)

let test_renewable_only_counts_under_congestion () =
  let a = Accounting.create ~alpha:1.0 () in
  Accounting.charge a ~site:"s" Resource.Cpu 5.0;
  Accounting.close_resource_interval a Resource.Cpu ~congested:false;
  Alcotest.(check (float 1e-9)) "uncongested renewable discarded" 0.0
    (Accounting.usage a ~site:"s" Resource.Cpu);
  Accounting.charge a ~site:"s" Resource.Cpu 5.0;
  Accounting.close_resource_interval a Resource.Cpu ~congested:true;
  Alcotest.(check (float 1e-9)) "congested renewable counted" 5.0
    (Accounting.usage a ~site:"s" Resource.Cpu)

let test_nonrenewable_always_counts () =
  let a = Accounting.create ~alpha:1.0 () in
  Accounting.charge a ~site:"s" Resource.Running_time 2.0;
  Accounting.close_resource_interval a Resource.Running_time ~congested:false;
  Alcotest.(check (float 1e-9)) "counted without congestion" 2.0
    (Accounting.usage a ~site:"s" Resource.Running_time)

let test_interval_resets () =
  let a = Accounting.create () in
  Accounting.charge a ~site:"s" Resource.Cpu 5.0;
  Accounting.close_resource_interval a Resource.Cpu ~congested:true;
  Alcotest.(check (float 1e-9)) "reset" 0.0
    (Accounting.interval_consumption a ~site:"s" Resource.Cpu)

let test_usage_is_weighted_average () =
  let a = Accounting.create ~alpha:0.5 () in
  Accounting.charge a ~site:"s" Resource.Cpu 10.0;
  Accounting.close_resource_interval a Resource.Cpu ~congested:true;
  Accounting.charge a ~site:"s" Resource.Cpu 20.0;
  Accounting.close_resource_interval a Resource.Cpu ~congested:true;
  Alcotest.(check (float 1e-9)) "ewma" 15.0 (Accounting.usage a ~site:"s" Resource.Cpu)

let test_penalization_decays () =
  (* §3.2: "allowing scripts to ... recover from past penalization". *)
  let a = Accounting.create ~alpha:0.5 () in
  Accounting.charge a ~site:"s" Resource.Cpu 100.0;
  Accounting.close_resource_interval a Resource.Cpu ~congested:true;
  for _ = 1 to 10 do
    Accounting.close_resource_interval a Resource.Cpu ~congested:false
  done;
  Alcotest.(check bool) "decayed" true (Accounting.usage a ~site:"s" Resource.Cpu < 0.2)

let test_contribution_shares () =
  let a = Accounting.create ~alpha:1.0 () in
  Accounting.charge a ~site:"big" Resource.Cpu 9.0;
  Accounting.charge a ~site:"small" Resource.Cpu 1.0;
  Accounting.close_resource_interval a Resource.Cpu ~congested:true;
  Alcotest.(check (float 1e-9)) "big share" 0.9 (Accounting.contribution a ~site:"big" Resource.Cpu);
  Alcotest.(check (float 1e-9)) "small share" 0.1
    (Accounting.contribution a ~site:"small" Resource.Cpu);
  Alcotest.(check (float 1e-9)) "unknown site" 0.0
    (Accounting.contribution a ~site:"nobody" Resource.Cpu)

let test_active_sites_and_forget () =
  let a = Accounting.create () in
  Accounting.charge a ~site:"b" Resource.Cpu 1.0;
  Accounting.charge a ~site:"a" Resource.Cpu 1.0;
  Alcotest.(check (list string)) "sorted" [ "a"; "b" ] (Accounting.active_sites a);
  Accounting.forget a ~site:"a";
  Alcotest.(check (list string)) "forgotten" [ "b" ] (Accounting.active_sites a)

(* --- the CONTROL algorithm -------------------------------------------- *)

type harness = {
  accounting : Accounting.t;
  monitor : Monitor.t;
  congested : (Resource.t, bool) Hashtbl.t;
  throttled : (string * float) list ref;
  unthrottled : int ref;
  killed : string list ref;
}

let make_harness () =
  let accounting = Accounting.create ~alpha:1.0 () in
  let congested = Hashtbl.create 4 in
  let throttled = ref [] in
  let unthrottled = ref 0 in
  let killed = ref [] in
  let monitor =
    Monitor.create ~accounting
      ~is_congested:(fun ~final:_ r -> Option.value (Hashtbl.find_opt congested r) ~default:false)
      ~throttle:(fun ~site ~fraction ~resource:_ -> throttled := (site, fraction) :: !throttled)
      ~unthrottle:(fun _ -> incr unthrottled)
      ~terminate:(fun ~site -> killed := site :: !killed)
      ()
  in
  { accounting; monitor; congested; throttled; unthrottled; killed }

let test_control_idle_when_clear () =
  let h = make_harness () in
  Accounting.charge h.accounting ~site:"s" Resource.Cpu 100.0;
  Alcotest.(check bool) "clear" true (Monitor.begin_control h.monitor Resource.Cpu = `Clear);
  Alcotest.(check bool) "no throttles" true (!(h.throttled) = []);
  Alcotest.(check bool) "unthrottled at finish" true
    (Monitor.finish_control h.monitor Resource.Cpu = `Unthrottled);
  Alcotest.(check bool) "nobody killed" true (!(h.killed) = [])

let test_control_throttles_proportionally () =
  let h = make_harness () in
  Accounting.charge h.accounting ~site:"hog" Resource.Cpu 3.0;
  Accounting.charge h.accounting ~site:"meek" Resource.Cpu 1.0;
  Hashtbl.replace h.congested Resource.Cpu true;
  (match Monitor.begin_control h.monitor Resource.Cpu with
   | `Congested fractions ->
     Alcotest.(check (float 1e-9)) "hog fraction" 0.75 (List.assoc "hog" fractions);
     Alcotest.(check (float 1e-9)) "meek fraction" 0.25 (List.assoc "meek" fractions)
   | `Clear -> Alcotest.fail "expected congestion");
  Alcotest.(check int) "both throttled" 2 (List.length !(h.throttled))

let test_control_kills_top_offender_if_congestion_persists () =
  let h = make_harness () in
  Accounting.charge h.accounting ~site:"hog" Resource.Cpu 9.0;
  Accounting.charge h.accounting ~site:"meek" Resource.Cpu 1.0;
  Hashtbl.replace h.congested Resource.Cpu true;
  ignore (Monitor.begin_control h.monitor Resource.Cpu);
  (* congestion persists through the timeout *)
  (match Monitor.finish_control h.monitor Resource.Cpu with
   | `Terminated site -> Alcotest.(check string) "largest contributor dies" "hog" site
   | `Unthrottled -> Alcotest.fail "expected termination");
  Alcotest.(check (list string)) "kill callback" [ "hog" ] !(h.killed);
  Alcotest.(check int) "termination counted" 1 (Monitor.terminations h.monitor)

let test_control_unthrottles_if_congestion_clears () =
  let h = make_harness () in
  Accounting.charge h.accounting ~site:"s" Resource.Cpu 5.0;
  Hashtbl.replace h.congested Resource.Cpu true;
  ignore (Monitor.begin_control h.monitor Resource.Cpu);
  Hashtbl.replace h.congested Resource.Cpu false (* throttling took effect *);
  Alcotest.(check bool) "unthrottled" true
    (Monitor.finish_control h.monitor Resource.Cpu = `Unthrottled);
  Alcotest.(check bool) "nobody killed" true (!(h.killed) = []);
  Alcotest.(check bool) "unthrottle callback ran" true (!(h.unthrottled) >= 1)

let test_control_no_ghost_kill () =
  (* finish_control with no prior begin ranks nobody. *)
  let h = make_harness () in
  Hashtbl.replace h.congested Resource.Cpu true;
  Alcotest.(check bool) "no pending queue" true
    (Monitor.finish_control h.monitor Resource.Cpu = `Unthrottled)

let test_control_per_resource_isolation () =
  let h = make_harness () in
  Accounting.charge h.accounting ~site:"s" Resource.Cpu 1.0;
  Accounting.charge h.accounting ~site:"s" Resource.Memory 1.0;
  Hashtbl.replace h.congested Resource.Cpu true;
  ignore (Monitor.begin_control h.monitor Resource.Cpu);
  ignore (Monitor.begin_control h.monitor Resource.Memory);
  (* only cpu was congested; memory usage (renewable) folded as zero *)
  Alcotest.(check bool) "cpu counted" true (Accounting.usage h.accounting ~site:"s" Resource.Cpu > 0.0);
  Alcotest.(check (float 1e-9)) "memory not counted" 0.0
    (Accounting.usage h.accounting ~site:"s" Resource.Memory)

let throttle_fractions_sum_to_one_prop =
  QCheck.Test.make ~name:"throttle fractions over active sites sum to 1" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 10) (float_range 0.1 50.0))
    (fun loads ->
      let h = make_harness () in
      List.iteri
        (fun i load ->
          Accounting.charge h.accounting ~site:(Printf.sprintf "s%d" i) Resource.Cpu load)
        loads;
      Hashtbl.replace h.congested Resource.Cpu true;
      match Monitor.begin_control h.monitor Resource.Cpu with
      | `Congested fractions ->
        let total = List.fold_left (fun acc (_, f) -> acc +. f) 0.0 fractions in
        Float.abs (total -. 1.0) < 1e-6
      | `Clear -> false)

let suite =
  [
    Alcotest.test_case "renewable vs nonrenewable" `Quick test_renewable_classification;
    Alcotest.test_case "charges accumulate per interval" `Quick test_charge_accumulates;
    Alcotest.test_case "renewable counts only under congestion" `Quick
      test_renewable_only_counts_under_congestion;
    Alcotest.test_case "nonrenewable always counts" `Quick test_nonrenewable_always_counts;
    Alcotest.test_case "closing an interval resets it" `Quick test_interval_resets;
    Alcotest.test_case "usage is a weighted average" `Quick test_usage_is_weighted_average;
    Alcotest.test_case "past penalization decays" `Quick test_penalization_decays;
    Alcotest.test_case "contribution shares" `Quick test_contribution_shares;
    Alcotest.test_case "active sites and forget" `Quick test_active_sites_and_forget;
    Alcotest.test_case "CONTROL: idle when uncongested" `Quick test_control_idle_when_clear;
    Alcotest.test_case "CONTROL: proportional throttling" `Quick
      test_control_throttles_proportionally;
    Alcotest.test_case "CONTROL: persistent congestion kills top offender" `Quick
      test_control_kills_top_offender_if_congestion_persists;
    Alcotest.test_case "CONTROL: clearing congestion unthrottles" `Quick
      test_control_unthrottles_if_congestion_clears;
    Alcotest.test_case "CONTROL: no kill without a ranked queue" `Quick
      test_control_no_ghost_kill;
    Alcotest.test_case "CONTROL: resources are independent" `Quick
      test_control_per_resource_isolation;
    QCheck_alcotest.to_alcotest throttle_fractions_sum_to_one_prop;
  ]
