(* The discrete-event simulator: clock, event ordering, daemon events,
   links, CPUs, and the simulated web. *)

open Core.Sim
open Core.Http

let start = 1_136_073_600.0

let test_clock_advances () =
  let sim = Sim.create () in
  let seen = ref [] in
  Sim.schedule sim ~delay:2.0 (fun () -> seen := ("b", Sim.now sim) :: !seen);
  Sim.schedule sim ~delay:1.0 (fun () -> seen := ("a", Sim.now sim) :: !seen);
  Sim.run sim;
  Alcotest.(check (list (pair string (float 1e-6)))) "ordered with timestamps"
    [ ("a", start +. 1.0); ("b", start +. 2.0) ]
    (List.rev !seen)

let test_ties_fifo () =
  let sim = Sim.create () in
  let seen = ref [] in
  List.iter
    (fun tag -> Sim.schedule sim ~delay:1.0 (fun () -> seen := tag :: !seen))
    [ "first"; "second"; "third" ];
  Sim.run sim;
  Alcotest.(check (list string)) "fifo ties" [ "first"; "second"; "third" ] (List.rev !seen)

let test_nested_scheduling () =
  let sim = Sim.create () in
  let result = ref 0.0 in
  Sim.schedule sim ~delay:1.0 (fun () ->
      Sim.schedule sim ~delay:1.0 (fun () -> result := Sim.now sim));
  Sim.run sim;
  Alcotest.(check (float 1e-6)) "nested" (start +. 2.0) !result

let test_run_until () =
  let sim = Sim.create () in
  let ran = ref 0 in
  Sim.schedule sim ~delay:1.0 (fun () -> incr ran);
  Sim.schedule sim ~delay:10.0 (fun () -> incr ran);
  Sim.run ~until:(start +. 5.0) sim;
  Alcotest.(check int) "only early event" 1 !ran;
  Alcotest.(check (float 1e-6)) "clock at deadline" (start +. 5.0) (Sim.now sim);
  Sim.run sim;
  Alcotest.(check int) "late event after full run" 2 !ran

let test_daemon_events_dont_block_run () =
  let sim = Sim.create () in
  let daemon_fires = ref 0 in
  let rec heartbeat () =
    incr daemon_fires;
    Sim.schedule sim ~daemon:true ~delay:1.0 heartbeat
  in
  Sim.schedule sim ~daemon:true ~delay:1.0 heartbeat;
  let work_done = ref false in
  Sim.schedule sim ~delay:3.5 (fun () -> work_done := true);
  Sim.run sim;
  Alcotest.(check bool) "work done" true !work_done;
  Alcotest.(check bool) "daemons ran while work pending" true (!daemon_fires >= 3);
  Alcotest.(check bool) "run returned despite daemons" true (!daemon_fires < 10)

let test_negative_delay_clamped () =
  let sim = Sim.create () in
  let at = ref 0.0 in
  Sim.schedule sim ~delay:(-5.0) (fun () -> at := Sim.now sim);
  Sim.run sim;
  Alcotest.(check (float 1e-6)) "clamped to now" start !at

let test_net_latency () =
  let sim = Sim.create () in
  let net = Net.create sim ~default_latency:0.1 ~default_bandwidth:1_000_000.0 () in
  let a = Net.add_host net ~name:"a" () in
  let b = Net.add_host net ~name:"b" () in
  let arrived = ref 0.0 in
  Net.send net ~src:a ~dst:b ~size:100_000 (fun () -> arrived := Sim.now sim);
  Sim.run sim;
  (* 0.1 s latency + 100 KB / 1 MBps = 0.1 s transmit *)
  Alcotest.(check (float 1e-6)) "latency + transmit" (start +. 0.2) !arrived

let test_net_bandwidth_sharing () =
  (* Two back-to-back transfers on the same link serialize through the
     shared pipe. *)
  let sim = Sim.create () in
  let net = Net.create sim ~default_latency:0.0 ~default_bandwidth:1_000_000.0 () in
  let a = Net.add_host net ~name:"a" () in
  let b = Net.add_host net ~name:"b" () in
  let t1 = ref 0.0 and t2 = ref 0.0 in
  Net.send net ~src:a ~dst:b ~size:1_000_000 (fun () -> t1 := Sim.now sim);
  Net.send net ~src:a ~dst:b ~size:1_000_000 (fun () -> t2 := Sim.now sim);
  Sim.run sim;
  Alcotest.(check (float 1e-3)) "first after 1s" (start +. 1.0) !t1;
  Alcotest.(check (float 1e-3)) "second queued to 2s" (start +. 2.0) !t2

let test_net_explicit_link () =
  let sim = Sim.create () in
  let net = Net.create sim () in
  let a = Net.add_host net ~name:"a" () in
  let b = Net.add_host net ~name:"b" () in
  (* The paper's WAN emulation: 80 ms delay, 8 Mbps cap. *)
  Net.connect net a b ~latency:0.08 ~bandwidth:1_000_000.0;
  let est = Net.transfer_time_estimate net ~src:a ~dst:b ~size:1_000_000 in
  Alcotest.(check (float 1e-6)) "estimate" 1.08 est;
  let est_rev = Net.transfer_time_estimate net ~src:b ~dst:a ~size:1_000_000 in
  Alcotest.(check (float 1e-6)) "symmetric" 1.08 est_rev

let test_local_send_instant () =
  let sim = Sim.create () in
  let net = Net.create sim () in
  let a = Net.add_host net ~name:"a" () in
  let at = ref 0.0 in
  Net.send net ~src:a ~dst:a ~size:1_000_000 (fun () -> at := Sim.now sim);
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "same-host delivery is free" start !at

let test_cpu_queueing () =
  let sim = Sim.create () in
  let net = Net.create sim () in
  let h = Net.add_host net ~name:"h" () in
  let t1 = ref 0.0 and t2 = ref 0.0 in
  Net.cpu_run net h ~seconds:1.0 (fun () -> t1 := Sim.now sim);
  Net.cpu_run net h ~seconds:1.0 (fun () -> t2 := Sim.now sim);
  Alcotest.(check (float 1e-6)) "backlog visible" 2.0 (Net.cpu_backlog net h);
  Sim.run sim;
  Alcotest.(check (float 1e-6)) "first at 1s" (start +. 1.0) !t1;
  Alcotest.(check (float 1e-6)) "second serialized" (start +. 2.0) !t2;
  Alcotest.(check (float 1e-6)) "backlog drained" 0.0 (Net.cpu_backlog net h)

let test_cpu_speed_scaling () =
  let sim = Sim.create () in
  let net = Net.create sim () in
  let fast = Net.add_host net ~name:"fast" ~cpu_speed:2.0 () in
  let done_at = ref 0.0 in
  Net.cpu_run net fast ~seconds:1.0 (fun () -> done_at := Sim.now sim);
  Sim.run sim;
  Alcotest.(check (float 1e-6)) "half the time" (start +. 0.5) !done_at


let test_net_egress_cap () =
  (* A host's shared uplink: transfers to *different* destinations still
     serialize through the per-host egress pipe. *)
  let sim = Sim.create () in
  let net = Net.create sim ~default_latency:0.0 ~default_bandwidth:100_000_000.0 () in
  let server = Net.add_host net ~name:"server" () in
  Net.set_egress_limit net server 1_000_000.0;
  let c1 = Net.add_host net ~name:"c1" () in
  let c2 = Net.add_host net ~name:"c2" () in
  let t1 = ref 0.0 and t2 = ref 0.0 in
  Net.send net ~src:server ~dst:c1 ~size:1_000_000 (fun () -> t1 := Sim.now sim);
  Net.send net ~src:server ~dst:c2 ~size:1_000_000 (fun () -> t2 := Sim.now sim);
  Sim.run sim;
  Alcotest.(check (float 0.05)) "first ~1s" (start +. 1.0) !t1;
  Alcotest.(check (float 0.05)) "second queued behind the uplink" (start +. 2.0) !t2;
  (* Inbound traffic is not limited by the egress cap. *)
  let t3 = ref 0.0 in
  Net.send net ~src:c1 ~dst:server ~size:1_000_000 (fun () -> t3 := Sim.now sim);
  Sim.run sim;
  Alcotest.(check bool) "inbound fast" true (!t3 -. Sim.now sim < 0.2)

let make_web () =
  let sim = Sim.create () in
  let net = Net.create sim () in
  let web = Httpd.create net in
  (sim, net, web)

let test_httpd_fetch () =
  let sim, net, web = make_web () in
  let server = Net.add_host net ~name:"server.org" () in
  Httpd.serve web ~host:server ~hostnames:[ "server.org" ] (fun req k ->
      k
        (Message.response
           ~body:("you asked for " ^ req.Message.url.Url.path)
           ()));
  let client = Net.add_host net ~name:"client" () in
  let got = ref "" in
  Httpd.fetch web ~from:client (Message.request "http://server.org/hello") (fun resp ->
      got := Body.to_string resp.Message.resp_body);
  Sim.run sim;
  Alcotest.(check string) "handler saw path" "you asked for /hello" !got

let test_httpd_unknown_host () =
  let sim, _net, web = make_web () in
  let client = Net.add_host (Httpd.net web) ~name:"client" () in
  let status = ref 0 in
  Httpd.fetch web ~from:client (Message.request "http://nowhere.invalid/") (fun resp ->
      status := resp.Message.status);
  Sim.run sim;
  Alcotest.(check int) "502" 502 !status

let test_httpd_fetch_via () =
  let sim, net, web = make_web () in
  let proxy = Net.add_host net ~name:"proxy" () in
  Httpd.serve web ~host:proxy ~hostnames:[ "proxy" ] (fun _req k ->
      k (Message.response ~body:"proxied" ()));
  let client = Net.add_host net ~name:"client" () in
  let got = ref "" in
  (* The URL host names a server that does not exist; fetch_via ignores it. *)
  Httpd.fetch_via web ~from:client ~via:proxy (Message.request "http://anything.org/x")
    (fun resp -> got := Body.to_string resp.Message.resp_body);
  Sim.run sim;
  Alcotest.(check string) "via proxy" "proxied" !got

let test_httpd_response_isolation () =
  (* Each fetch must get a private copy of the response. *)
  let sim, net, web = make_web () in
  let shared = Message.response ~body:"shared" () in
  let server = Net.add_host net ~name:"s.org" () in
  Httpd.serve web ~host:server ~hostnames:[ "s.org" ] (fun _req k -> k shared);
  let client = Net.add_host net ~name:"c" () in
  let r1 = ref None in
  Httpd.fetch web ~from:client (Message.request "http://s.org/") (fun resp -> r1 := Some resp);
  Sim.run sim;
  Message.set_body (Option.get !r1) "mutated";
  Alcotest.(check string) "original untouched" "shared" (Body.to_string shared.Message.resp_body)

let test_trace () =
  let tr = Trace.create () in
  Trace.incr tr "hits";
  Trace.incr ~by:4 tr "hits";
  Trace.add tr "latency" 0.25;
  Trace.add tr "latency" 0.75;
  Alcotest.(check int) "counter" 5 (Trace.count tr "hits");
  Alcotest.(check int) "missing counter" 0 (Trace.count tr "nope");
  Alcotest.(check (float 1e-9)) "stat mean" 0.5 (Core.Util.Stats.mean (Trace.stats tr "latency"));
  Alcotest.(check (list string)) "names" [ "latency" ] (Trace.stat_names tr)

let suite =
  [
    Alcotest.test_case "clock advances through events" `Quick test_clock_advances;
    Alcotest.test_case "equal-time events run FIFO" `Quick test_ties_fifo;
    Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
    Alcotest.test_case "run ~until stops early" `Quick test_run_until;
    Alcotest.test_case "daemon events do not block run" `Quick
      test_daemon_events_dont_block_run;
    Alcotest.test_case "negative delays clamp to now" `Quick test_negative_delay_clamped;
    Alcotest.test_case "net: latency + transmit time" `Quick test_net_latency;
    Alcotest.test_case "net: shared pipe serializes transfers" `Quick
      test_net_bandwidth_sharing;
    Alcotest.test_case "net: explicit WAN link (80ms/8Mbps)" `Quick test_net_explicit_link;
    Alcotest.test_case "net: per-host egress cap" `Quick test_net_egress_cap;
    Alcotest.test_case "net: same-host sends are free" `Quick test_local_send_instant;
    Alcotest.test_case "cpu: work queues" `Quick test_cpu_queueing;
    Alcotest.test_case "cpu: speed scaling" `Quick test_cpu_speed_scaling;
    Alcotest.test_case "httpd: fetch by hostname" `Quick test_httpd_fetch;
    Alcotest.test_case "httpd: unknown host yields 502" `Quick test_httpd_unknown_host;
    Alcotest.test_case "httpd: fetch_via overrides resolution" `Quick test_httpd_fetch_via;
    Alcotest.test_case "httpd: responses are copied" `Quick test_httpd_response_isolation;
    Alcotest.test_case "trace: counters and samples" `Quick test_trace;
  ]
