(* SHA-256 / HMAC-SHA256 against published test vectors, plus
   incremental-update and property checks. *)

open Core.Crypto

let test_sha256_vectors () =
  (* FIPS 180-4 / NIST examples. *)
  List.iter
    (fun (input, expected) -> Alcotest.(check string) input expected (Sha256.digest_hex input))
    [
      ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
      ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
      ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
      ( "The quick brown fox jumps over the lazy dog",
        "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592" );
    ]

let test_sha256_million_a () =
  (* The classic one-million-'a' vector, fed incrementally. *)
  let ctx = Sha256.init () in
  let chunk = String.make 1000 'a' in
  for _ = 1 to 1000 do
    Sha256.update ctx chunk
  done;
  Alcotest.(check string) "1M x a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.hex (Sha256.finalize ctx))

let test_sha256_incremental_equals_oneshot () =
  let data = String.init 10_000 (fun i -> Char.chr (i mod 256)) in
  let ctx = Sha256.init () in
  (* Uneven chunk sizes crossing block boundaries. *)
  let sizes = [ 1; 63; 64; 65; 127; 128; 1000; 8552 ] in
  let pos = ref 0 in
  List.iter
    (fun n ->
      Sha256.update ctx (String.sub data !pos n);
      pos := !pos + n)
    sizes;
  Alcotest.(check string) "incremental = one-shot" (Sha256.digest data)
    (Sha256.finalize ctx)

let test_sha256_block_boundaries () =
  (* Lengths straddling the 55/56/64-byte padding edge cases. *)
  List.iter
    (fun n ->
      let s = String.make n 'x' in
      Alcotest.(check int) (Printf.sprintf "len %d digest size" n) 32
        (String.length (Sha256.digest s)))
    [ 0; 1; 55; 56; 57; 63; 64; 65; 119; 120; 128 ]

let sha256_distinct_prop =
  QCheck.Test.make ~name:"sha256: distinct inputs yield distinct digests" ~count:200
    QCheck.(pair (string_of_size Gen.(0 -- 200)) (string_of_size Gen.(0 -- 200)))
    (fun (a, b) -> a = b || Sha256.digest a <> Sha256.digest b)

let test_hex () =
  Alcotest.(check string) "hex" "00ff10" (Sha256.hex "\x00\xff\x10")

let test_hmac_rfc4231 () =
  (* RFC 4231 test cases 1, 2 and the long-key case 6. *)
  Alcotest.(check string) "case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hmac.mac_hex ~key:(String.make 20 '\x0b') "Hi There");
  Alcotest.(check string) "case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hmac.mac_hex ~key:"Jefe" "what do ya want for nothing?");
  Alcotest.(check string) "case 6 (131-byte key)"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Hmac.mac_hex ~key:(String.make 131 '\xaa') "Test Using Larger Than Block-Size Key - Hash Key First")

let test_hmac_verify () =
  let key = "secret" and msg = "the content" in
  let mac = Hmac.mac ~key msg in
  Alcotest.(check bool) "verifies" true (Hmac.verify ~key ~msg ~mac);
  Alcotest.(check bool) "wrong key" false (Hmac.verify ~key:"other" ~msg ~mac);
  Alcotest.(check bool) "wrong msg" false (Hmac.verify ~key ~msg:"tampered" ~mac);
  Alcotest.(check bool) "truncated mac" false
    (Hmac.verify ~key ~msg ~mac:(String.sub mac 0 16))

let hmac_key_sensitivity_prop =
  QCheck.Test.make ~name:"hmac: different keys give different macs" ~count:100
    QCheck.(pair (string_of_size Gen.(1 -- 64)) (string_of_size Gen.(1 -- 64)))
    (fun (k1, k2) -> k1 = k2 || Hmac.mac ~key:k1 "fixed message" <> Hmac.mac ~key:k2 "fixed message")

let suite =
  [
    Alcotest.test_case "sha256: NIST vectors" `Quick test_sha256_vectors;
    Alcotest.test_case "sha256: one million a's (incremental)" `Slow test_sha256_million_a;
    Alcotest.test_case "sha256: incremental equals one-shot" `Quick
      test_sha256_incremental_equals_oneshot;
    Alcotest.test_case "sha256: padding boundary lengths" `Quick test_sha256_block_boundaries;
    QCheck_alcotest.to_alcotest sha256_distinct_prop;
    Alcotest.test_case "hex encoding" `Quick test_hex;
    Alcotest.test_case "hmac: RFC 4231 vectors" `Quick test_hmac_rfc4231;
    Alcotest.test_case "hmac: verify accepts/rejects" `Quick test_hmac_verify;
    QCheck_alcotest.to_alcotest hmac_key_sensitivity_prop;
  ]
