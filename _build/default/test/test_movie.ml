(* The NKV movie codec and the MovieTranscoder vocabulary (§3.1's
   anticipated movie-transcoding vocabulary). *)

open Core.Vocab

let clip = Movie.synthesize ~width:64 ~height:48 ~fps:24 ~seconds:2 ~seed:7

let test_encode_decode_roundtrip () =
  match Movie.decode (Movie.encode clip) with
  | Error e -> Alcotest.fail e
  | Ok m ->
    Alcotest.(check int) "fps" 24 m.Movie.fps;
    Alcotest.(check int) "frames" 48 (List.length m.Movie.frames);
    Alcotest.(check (float 1e-9)) "duration" 2.0 (Movie.duration m);
    let f0 = List.hd m.Movie.frames and orig0 = List.hd clip.Movie.frames in
    Alcotest.(check bytes) "first frame lossless" orig0.Image.pixels f0.Image.pixels

let test_info_peek () =
  Alcotest.(check (option (pair (pair int int) (pair int int)))) "header" (Some ((48, 24), (64, 48)))
    (Option.map (fun (a, b, c, d) -> ((a, b), (c, d))) (Movie.info (Movie.encode clip)));
  Alcotest.(check bool) "garbage" true (Movie.info "not a movie" = None)

let test_decode_errors () =
  let encoded = Movie.encode clip in
  List.iter
    (fun s ->
      match Movie.decode s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "expected decode error")
    [
      "";
      "NKV1";
      String.sub encoded 0 (String.length encoded - 5) (* truncated *);
      encoded ^ "junk";
    ]

let test_frame_dropping () =
  let half = Movie.transcode clip ~fps:12 () in
  Alcotest.(check int) "half the frames" 24 (List.length half.Movie.frames);
  Alcotest.(check (float 1e-6)) "duration preserved" (Movie.duration clip) (Movie.duration half);
  let third = Movie.transcode clip ~fps:8 () in
  Alcotest.(check int) "a third" 16 (List.length third.Movie.frames)

let test_rescaling () =
  let small = Movie.transcode clip ~width:32 ~height:24 () in
  (match small.Movie.frames with
   | f :: _ ->
     Alcotest.(check int) "width" 32 f.Image.width;
     Alcotest.(check int) "height" 24 f.Image.height
   | [] -> Alcotest.fail "no frames");
  Alcotest.(check bool) "smaller payload" true
    (String.length (Movie.encode small) < String.length (Movie.encode clip))

let test_transcode_reduces_bitrate () =
  let original = Movie.encode clip in
  let reduced = Movie.encode (Movie.transcode clip ~fps:6 ~width:32 ~height:24 ()) in
  Alcotest.(check bool) "bitrate drops" true (Movie.bitrate reduced < Movie.bitrate original /. 2.0)

let test_transcode_rejects_bad_targets () =
  Alcotest.check_raises "fps increase"
    (Invalid_argument "Movie.transcode: cannot raise the frame rate") (fun () ->
      ignore (Movie.transcode clip ~fps:60 ()));
  Alcotest.check_raises "zero width" (Invalid_argument "Movie.transcode: non-positive target")
    (fun () -> ignore (Movie.transcode clip ~width:0 ()))

let make_ctx () =
  let ctx = Core.Script.Interp.create () in
  Platform_v.install_all (Hostcall.stub ()) ctx;
  Core.Script.Interp.define_global ctx "clip"
    (Core.Script.Value.Vstr (Movie.encode clip));
  ctx

let run ctx src = Core.Script.Interp.run_string ctx src

let test_vocab_info_and_duration () =
  let ctx = make_ctx () in
  Alcotest.(check (float 1e-9)) "fps" 24.0
    (Core.Script.Value.to_number (run ctx "MovieTranscoder.info(clip).fps"));
  Alcotest.(check (float 1e-9)) "duration" 2.0
    (Core.Script.Value.to_number (run ctx "MovieTranscoder.duration(clip)"))

let test_vocab_transcode_script () =
  (* The mobile-device pattern: reduce rate and size when the clip's
     bitrate exceeds the device's link. *)
  let ctx = make_ctx () in
  let v =
    run ctx
      {|
var out = clip;
if (MovieTranscoder.bitrate(clip) > 1000) {
  out = MovieTranscoder.transcode(clip, 6, 32, 24);
}
var before = MovieTranscoder.info(clip);
var after = MovieTranscoder.info(out);
"" + before.frames + "->" + after.frames + " " + after.x + "x" + after.y
|}
  in
  Alcotest.(check string) "reduced" "48->12 32x24" (Core.Script.Value.to_string v)

let test_vocab_transcode_charges_fuel () =
  let ctx = make_ctx () in
  let before = Core.Script.Interp.fuel_used ctx in
  ignore (run ctx "MovieTranscoder.transcode(clip, 12, 0, 0)");
  Alcotest.(check bool) "pixel-proportional fuel" true
    (Core.Script.Interp.fuel_used ctx - before > 10_000)

let suite =
  [
    Alcotest.test_case "encode/decode roundtrip" `Quick test_encode_decode_roundtrip;
    Alcotest.test_case "header-only info" `Quick test_info_peek;
    Alcotest.test_case "malformed containers" `Quick test_decode_errors;
    Alcotest.test_case "frame dropping" `Quick test_frame_dropping;
    Alcotest.test_case "rescaling" `Quick test_rescaling;
    Alcotest.test_case "transcoding reduces bitrate" `Quick test_transcode_reduces_bitrate;
    Alcotest.test_case "bad targets rejected" `Quick test_transcode_rejects_bad_targets;
    Alcotest.test_case "vocab: info and duration" `Quick test_vocab_info_and_duration;
    Alcotest.test_case "vocab: device adaptation script" `Quick test_vocab_transcode_script;
    Alcotest.test_case "vocab: fuel charged" `Quick test_vocab_transcode_charges_fuel;
  ]
