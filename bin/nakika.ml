(* The nakika command-line tool.

   The paper notes that "the main impediment to a faster port was the
   relative lack of debugging tools for our prototype implementation"
   (§5.2) — so this CLI is primarily a development aid for NKScript
   authors:

     nakika exec SCRIPT.js          run a script in a sandboxed context
     nakika policies SCRIPT.js      show the policies a script registers
     nakika lint SCRIPT.js          static analysis: scope, call shapes,
                                    cost bounds, taint (exit 0/1/2)
     nakika plan check PLAN.nkp     verify a capacity plan (exit 0/1/2);
                                    also: plan compile, plan explain
     nakika fmt SCRIPT.js           pretty-print a script in canonical form
     nakika nkp PAGE.nkp            render a Na Kika Page
     nakika demo                    run a small end-to-end deployment
     nakika stats                   run the demo deployment, dump its metrics
     nakika trace                   run the demo deployment, show slowest traces
     nakika chaos                   run a seeded fault-injection scenario
     nakika version                 print the library version *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let make_ctx ~fuel ~heap =
  let ctx = Core.Script.Interp.create ~max_fuel:fuel ~max_heap_bytes:heap () in
  Core.Vocab.Platform_v.install_all (Core.Vocab.Hostcall.stub ()) ctx;
  Core.Vocab.Eval_v.install ctx;
  ctx

let report_script_error = function
  | Core.Script.Value.Script_error msg ->
    Printf.eprintf "runtime error: %s\n" msg;
    1
  | Core.Script.Parser.Parse_error (msg, pos) ->
    Printf.eprintf "parse error at %d:%d: %s\n" pos.Core.Script.Ast.line pos.col msg;
    1
  | Core.Script.Lexer.Lex_error (msg, pos) ->
    Printf.eprintf "lex error at %d:%d: %s\n" pos.Core.Script.Ast.line pos.col msg;
    1
  | Core.Script.Interp.Resource_exhausted msg ->
    Printf.eprintf "sandbox: %s\n" msg;
    1
  | exn -> raise exn

let fuel_arg =
  Arg.(value & opt int 5_000_000 & info [ "fuel" ] ~docv:"UNITS" ~doc:"Sandbox fuel limit.")

let heap_arg =
  Arg.(
    value
    & opt int (64 * 1024 * 1024)
    & info [ "heap" ] ~docv:"BYTES" ~doc:"Sandbox script-heap limit.")

let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")

let exec_cmd =
  let run fuel heap path =
    let ctx = make_ctx ~fuel ~heap in
    match Core.Script.Compile.run_string ctx (read_file path) with
    | value ->
      print_endline (Core.Script.Value.to_string value);
      Printf.eprintf "(fuel used: %d, heap used: %d bytes)\n"
        (Core.Script.Interp.fuel_used ctx)
        (Core.Script.Interp.heap_used ctx);
      0
    | exception exn -> report_script_error exn
  in
  Cmd.v
    (Cmd.info "exec" ~doc:"Run an NKScript file in a sandboxed scripting context.")
    Term.(const run $ fuel_arg $ heap_arg $ file_arg)

let policies_cmd =
  let run fuel heap path =
    let ctx = make_ctx ~fuel ~heap in
    let registry = Core.Policy.Script_bridge.create_registry () in
    Core.Policy.Script_bridge.install registry ctx;
    match Core.Script.Compile.run_string ctx (read_file path) with
    | exception exn -> report_script_error exn
    | _ ->
      let policies = Core.Policy.Script_bridge.policies registry in
      Printf.printf "%d policy object(s) registered\n" (List.length policies);
      List.iter
        (fun (p : Core.Policy.Policy.t) ->
          Printf.printf "- policy #%d\n" p.Core.Policy.Policy.order;
          let show label = function
            | [] -> ()
            | values -> Printf.printf "    %-12s %s\n" label (String.concat ", " values)
          in
          show "url:" p.Core.Policy.Policy.urls;
          show "client:" p.Core.Policy.Policy.clients;
          show "method:" p.Core.Policy.Policy.methods;
          show "headers:"
            (List.map
               (fun (name, re) -> Printf.sprintf "%s =~ %s" name (Core.Regex.Regex.source re))
               p.Core.Policy.Policy.headers);
          show "nextStages:" p.Core.Policy.Policy.next_stages;
          Printf.printf "    handlers:    onRequest=%s onResponse=%s\n"
            (if p.Core.Policy.Policy.on_request <> None then "yes" else "null")
            (if p.Core.Policy.Policy.on_response <> None then "yes" else "null"))
        policies;
      0
  in
  Cmd.v
    (Cmd.info "policies"
       ~doc:"Evaluate a site script and list the policy objects it registers.")
    Term.(const run $ fuel_arg $ heap_arg $ file_arg)

let nkp_cmd =
  let run fuel heap path =
    let ctx = make_ctx ~fuel ~heap in
    match Core.Pipeline.Nkp.render ctx (read_file path) with
    | html ->
      print_string html;
      if html = "" || html.[String.length html - 1] <> '\n' then print_newline ();
      0
    | exception exn -> report_script_error exn
  in
  Cmd.v
    (Cmd.info "nkp" ~doc:"Render a Na Kika Page (<?nkp ... ?>) to standard output.")
    Term.(const run $ fuel_arg $ heap_arg $ file_arg)

let fmt_cmd =
  let run path =
    match Core.Script.Pretty.format (read_file path) with
    | Ok formatted ->
      print_string formatted;
      0
    | Error msg ->
      Printf.eprintf "%s\n" msg;
      1
  in
  Cmd.v
    (Cmd.info "fmt" ~doc:"Pretty-print an NKScript file in canonical form.")
    Term.(const run $ file_arg)

let demo_cmd =
  let run () =
    let cluster = Core.Node.Cluster.create () in
    let origin = Core.Node.Cluster.add_origin cluster ~name:"www.example.edu" () in
    Core.Node.Origin.set_static origin ~path:"/index.html" ~max_age:300
      "<html>hello from the origin</html>";
    Core.Node.Origin.set_static origin ~path:"/nakika.js" ~content_type:"text/javascript"
      ~max_age:300
      {|
var p = new Policy();
p.url = ["www.example.edu"];
p.onResponse = function() {
  var b = "", c;
  while ((c = Response.read()) != null) { b += c; }
  Response.write(b.replace("origin", "edge"));
}
p.register();
|};
    let proxy = Core.Node.Cluster.add_proxy cluster ~name:"nk1.nakika.net" () in
    let client = Core.Node.Cluster.add_client cluster ~name:"client" in
    Core.Node.Cluster.fetch cluster ~client ~proxy
      (Core.Http.Message.request "http://www.example.edu.nakika.net/index.html")
      (fun resp ->
        Printf.printf "%d %s\n" resp.Core.Http.Message.status
          (Core.Http.Body.to_string resp.Core.Http.Message.resp_body));
    Core.Node.Cluster.run cluster;
    ignore proxy;
    0
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Run a minimal end-to-end deployment on the simulator.")
    Term.(const run $ const ())

(* The telemetry subcommands observe a slightly richer version of the
   demo deployment: two sites (one scripted, one plain), with repeated
   requests so the traces show cache hits next to origin fetches. *)
let telemetry_scenario () =
  let cluster = Core.Node.Cluster.create () in
  let origin = Core.Node.Cluster.add_origin cluster ~name:"www.example.edu" () in
  Core.Node.Origin.set_static origin ~path:"/index.html" ~max_age:300
    "<html>hello from the origin</html>";
  Core.Node.Origin.set_static origin ~path:"/news.html" ~max_age:0
    "<html>rolling news content</html>";
  Core.Node.Origin.set_static origin ~path:"/nakika.js" ~content_type:"text/javascript"
    ~max_age:300
    {|
var p = new Policy();
p.url = ["www.example.edu"];
p.onResponse = function() {
  var b = "", c;
  while ((c = Response.read()) != null) { b += c; }
  Response.write(b.replace("origin", "edge"));
}
p.register();
|};
  let plain = Core.Node.Cluster.add_origin cluster ~name:"static.example.org" () in
  Core.Node.Origin.set_static plain ~path:"/logo.png" ~content_type:"image/png"
    ~max_age:300 (String.make 2048 'x');
  let proxy = Core.Node.Cluster.add_proxy cluster ~name:"nk1.nakika.net" () in
  let client = Core.Node.Cluster.add_client cluster ~name:"client" in
  let get url =
    Core.Node.Cluster.fetch cluster ~client ~proxy (Core.Http.Message.request url)
      (fun _ -> ());
    Core.Node.Cluster.run cluster
  in
  List.iter get
    [
      "http://www.example.edu.nakika.net/index.html";
      "http://www.example.edu.nakika.net/index.html";
      "http://www.example.edu.nakika.net/news.html";
      "http://www.example.edu.nakika.net/news.html";
      "http://static.example.org.nakika.net/logo.png";
      "http://static.example.org.nakika.net/logo.png";
      "http://www.example.edu.nakika.net/index.html";
    ];
  proxy

(* The proxies behind [stats --health] are provisioned from a capacity
   plan rather than a hand-built config, so the health table can show
   the plan hash each node runs under — the audit handle an operator
   compares against the plan text they think they deployed. *)
let health_plan_text =
  "# stats --health provisioning\n\
   node \"*.nakika.net\" {\n\
  \  diffusion { enabled = on }\n\
  \  hotspots { enabled = on\n\
  \             threshold = 3\n\
  \             replicas = 2\n\
  \             ttl = 60s\n\
  \             halflife = 5s }\n\
  \  deadline { request = 2s\n\
  \             hedge = on\n\
  \             retry_budget = 10% }\n\
   }\n"

let health_config () =
  let report = Core.Provision.Provision.compile health_plan_text in
  match Core.Provision.Provision.config_for report ~node:"nk1.nakika.net" with
  | Some config -> config
  | None -> failwith "stats --health: embedded capacity plan failed to compile"

(* The overload scenario behind [stats --health]: a flash crowd swamps
   one of two proxies (its admission queue sheds, and with diffusion on
   it offloads executions toward the idle one), a handful of fetches
   toward a dead origin trip that origin's circuit breaker, and a
   steady crowd on an uncacheable live page keeps hitting the DHT so
   its key crosses the plan's hotspot threshold. *)
let health_scenario () =
  let epoch = 1_136_073_600.0 in
  let plan = Core.Faults.Plan.create () in
  Core.Faults.Plan.fail_origin plan ~host:"dead.example.org" ~at:epoch
    ~until:(epoch +. 3600.0) ();
  let cluster = Core.Node.Cluster.create ~faults:plan () in
  let origin = Core.Node.Cluster.add_origin cluster ~name:"www.example.edu" () in
  Core.Node.Origin.set_static origin ~path:"/index.html" ~max_age:300
    "<html>hello from the origin</html>";
  let dead = Core.Node.Cluster.add_origin cluster ~name:"dead.example.org" () in
  Core.Node.Origin.set_static dead ~path:"/index.html" ~max_age:0 "<html>unreachable</html>";
  let live = Core.Node.Cluster.add_origin cluster ~name:"live.example.net" () in
  Core.Node.Origin.set_static live ~path:"/scores.html" ~max_age:0 "<html>live scores</html>";
  let config = health_config () in
  let p1 = Core.Node.Cluster.add_proxy cluster ~name:"nk1.nakika.net" ~config () in
  let p2 = Core.Node.Cluster.add_proxy cluster ~name:"nk2.nakika.net" ~config () in
  let client = Core.Node.Cluster.add_client cluster ~name:"client" in
  let sim = Core.Node.Cluster.sim cluster in
  (* The crowd starts after the first load-report cycle (1 s) so the
     proxies have gossiped pressure once and diffusion has a neighbor
     table to offload into. *)
  for i = 0 to 299 do
    Core.Sim.Sim.schedule_at sim
      (epoch +. 1.5 +. (0.001 *. float_of_int i))
      (fun () ->
        Core.Node.Cluster.fetch cluster ~client ~proxy:p1
          (Core.Http.Message.request "http://www.example.edu.nakika.net/index.html")
          (fun _ -> ()))
  done;
  for i = 0 to 5 do
    Core.Sim.Sim.schedule_at sim
      (epoch +. 1.0 +. float_of_int i)
      (fun () ->
        Core.Node.Cluster.fetch cluster ~client ~proxy:p2
          (Core.Http.Message.request "http://dead.example.org.nakika.net/index.html")
          (fun _ -> ()))
  done;
  (* The live-page crowd: 10 req/s against an uncacheable URL, so each
     request misses the local cache and does a DHT lookup — its decayed
     rate holds above the plan's 3 req/s hotspot threshold right up to
     the snapshot at t = 30 s. *)
  for i = 0 to 199 do
    Core.Sim.Sim.schedule_at sim
      (epoch +. 10.0 +. (0.1 *. float_of_int i))
      (fun () ->
        Core.Node.Cluster.fetch cluster ~client
          ~proxy:(if i mod 2 = 0 then p1 else p2)
          (Core.Http.Message.request "http://live.example.net.nakika.net/scores.html")
          (fun _ -> ()))
  done;
  Core.Sim.Sim.run ~until:(epoch +. 30.0) sim;
  (cluster, [ p1; p2 ])

let print_health (cluster, proxies) =
  Printf.printf "%-18s %12s %10s %7s %9s %14s %12s %9s %9s %8s %8s %10s\n" "node"
    "queue-delay" "shed-rate" "sheds" "shedding" "open-breakers" "quarantined" "pressure"
    "offloads" "rejects" "ddl-exp" "hedge-wins";
  List.iter
    (fun p ->
      (* The table reads the [health.*] gauges the node publishes each
         report interval; name lists come from the live health view.
         Diffusion columns: current pressure plus cumulative executions
         this node moved elsewhere / refused from elsewhere. *)
      let m = Core.Node.Node.metrics p in
      let h = Core.Node.Node.health p in
      Printf.printf "%-18s %12.4f %10.3f %7d %9s %14.0f %12.0f %9.3f %9d %8d %8d %10d\n"
        (Core.Node.Node.name p)
        (Core.Telemetry.Metrics.gauge m "health.queue_delay")
        (Core.Telemetry.Metrics.gauge m "health.shed_rate")
        (Core.Telemetry.Metrics.counter_total m "admission.sheds")
        (if h.Core.Node.Node.shedding then "yes" else "no")
        (Core.Telemetry.Metrics.gauge m "health.open_breakers")
        (Core.Telemetry.Metrics.gauge m "health.quarantined_sites")
        (Core.Node.Node.pressure p)
        (Core.Telemetry.Metrics.counter_total m "diffusion.offloads")
        (Core.Telemetry.Metrics.counter_total m "diffusion.rejects")
        (Core.Telemetry.Metrics.counter_total m "deadline.expired")
        (Core.Telemetry.Metrics.counter_total m "hedge.wins"))
    proxies;
  List.iter
    (fun p ->
      let h = Core.Node.Node.health p in
      List.iter
        (fun b -> Printf.printf "%s: breaker open: %s\n" (Core.Node.Node.name p) b)
        h.Core.Node.Node.open_breakers;
      List.iter
        (fun site -> Printf.printf "%s: quarantined: %s\n" (Core.Node.Node.name p) site)
        h.Core.Node.Node.quarantined)
    proxies;
  List.iter
    (fun p ->
      Printf.printf "%s: plan %s\n" (Core.Node.Node.name p)
        (match (Core.Node.Node.config p).Core.Node.Config.plan_hash with
         | Some hash -> hash
         | None -> "(none)"))
    proxies;
  (* The hotspot view lives in the shared DHT, not any one node: keys
     whose decayed request rate crossed the plan's threshold, and how
     many sloppy replicas currently serve them. *)
  let dht = Core.Node.Cluster.dht cluster in
  let now = Core.Sim.Sim.now (Core.Node.Cluster.sim cluster) in
  let hot = Core.Overlay.Dht.hotspots dht ~now in
  Printf.printf "hotspots: %d hot key(s), %d sloppy replica placement(s)\n" (List.length hot)
    (Core.Overlay.Dht.sloppy_replicas dht);
  List.iter (fun (key, rate) -> Printf.printf "hot: %s (%.1f req/s)\n" key rate) hot

let stats_cmd =
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("table", `Table); ("json", `Json); ("prom", `Prom) ]) `Table
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:"Output format: $(b,table), $(b,json) (one object per instrument per \
                line), or $(b,prom) (Prometheus text exposition).")
  in
  let health_arg =
    Arg.(
      value & flag
      & info [ "health" ]
          ~doc:
            "Run a small overload scenario (flash crowd on one of two proxies, one dead \
             origin) instead of the demo deployment, and print each node's health view: \
             queue delay, shed rate, open circuit breakers, quarantined sites.")
  in
  let run format health =
    if health then begin
      print_health (health_scenario ());
      0
    end
    else begin
      let proxy = telemetry_scenario () in
      let metrics = Core.Node.Node.metrics proxy in
      (match format with
       | `Table -> print_string (Core.Telemetry.Metrics.to_table metrics)
       | `Json -> print_string (Core.Telemetry.Metrics.to_json_lines metrics)
       | `Prom -> print_string (Core.Telemetry.Metrics.to_prometheus metrics));
      0
    end
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run the demo deployment and dump the proxy node's metrics registry \
          (counters, gauges, latency/fuel histograms); with $(b,--health), run an \
          overload scenario and print per-node health instead.")
    Term.(const run $ format_arg $ health_arg)

let trace_cmd =
  let slowest_arg =
    Arg.(
      value & opt int 5
      & info [ "slowest" ] ~docv:"N" ~doc:"Show the $(docv) slowest request traces.")
  in
  let run n =
    let proxy = telemetry_scenario () in
    let tracer = Core.Node.Node.tracer proxy in
    let slowest = Core.Telemetry.Tracer.slowest tracer n in
    Printf.printf "%d trace(s) completed on %s; showing the %d slowest\n"
      (Core.Telemetry.Tracer.completed tracer)
      (Core.Node.Node.name proxy) (List.length slowest);
    List.iter
      (fun trace ->
        print_newline ();
        print_string (Core.Telemetry.Tracer.render trace))
      slowest;
    0
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run the demo deployment and render the slowest request traces as span trees \
          (cache lookup, policy match, pipeline stages, origin fetches).")
    Term.(const run $ slowest_arg)

let lint_cmd =
  let files_arg = Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE") in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit diagnostics and cost bounds as JSON.")
  in
  let errors_only_arg =
    Arg.(
      value & flag
      & info [ "errors-only" ]
          ~doc:
            "Report only error-severity diagnostics; warnings neither print nor \
             affect the exit code.")
  in
  let module D = Core.Analysis.Diagnostic in
  let module J = Core.Vocab.Json in
  let json_of_cost (it : Core.Analysis.Cost.item) =
    let base =
      [
        ("name", J.Str it.Core.Analysis.Cost.name);
        ("line", J.Num (float_of_int it.Core.Analysis.Cost.pos.Core.Script.Ast.line));
      ]
    in
    match it.Core.Analysis.Cost.bound with
    | Core.Analysis.Cost.Bounded { fuel; allocs } ->
      J.Obj
        (base
        @ [
            ("bound", J.Str "bounded");
            ("fuel", J.Num (float_of_int fuel));
            ("allocs", J.Num (float_of_int allocs));
          ])
    | Core.Analysis.Cost.Unbounded { reason; _ } ->
      J.Obj (base @ [ ("bound", J.Str "unbounded"); ("reason", J.Str reason) ])
  in
  let run json errors_only paths =
    (* Exit status: 0 clean, 1 warnings only, 2 any error. *)
    let worst = ref 0 in
    let docs =
      List.map
        (fun path ->
          let report = Core.Analysis.Analysis.analyze_source (read_file path) in
          let diags =
            if errors_only then
              List.filter
                (fun (d : D.t) -> d.D.severity = D.Error)
                report.Core.Analysis.Analysis.diagnostics
            else report.Core.Analysis.Analysis.diagnostics
          in
          List.iter
            (fun (d : D.t) ->
              match d.D.severity with
              | D.Error -> worst := 2
              | D.Warning -> worst := max !worst 1
              | D.Info -> ())
            diags;
          if not json then
            List.iter
              (fun d -> Printf.printf "%s:%s\n" path (D.to_string d))
              diags;
          J.Obj
            [
              ("file", J.Str path);
              ( "errors",
                J.Num (float_of_int (Core.Analysis.Analysis.errors report)) );
              ( "warnings",
                J.Num (float_of_int (Core.Analysis.Analysis.warnings report)) );
              ("diagnostics", J.Arr (List.map D.to_json diags));
              ( "costs",
                J.Arr (List.map json_of_cost report.Core.Analysis.Analysis.costs)
              );
            ])
        paths
    in
    if json then print_endline (J.print (J.Arr docs))
    else if !worst = 0 then
      Printf.printf "%d file%s clean\n" (List.length paths)
        (if List.length paths = 1 then "" else "s");
    !worst
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyze NKScript files: scope/resolution, builtin and \
          vocabulary call shapes, per-handler cost bounds, and sensitive-header \
          taint flows. Exit status is 0 when clean, 1 with warnings only, 2 with \
          errors.")
    Term.(const run $ json_arg $ errors_only_arg $ files_arg)

(* nakika plan: the capacity-plan toolchain. Mirrors `nakika lint` —
   same diagnostic format, same JSON schema (one encoder,
   [Diagnostic.to_json]), same 0/1/2 exit convention. *)
let plan_cmd =
  let module D = Core.Analysis.Diagnostic in
  let module J = Core.Vocab.Json in
  let module P = Core.Provision.Provision in
  let files_arg = Arg.(non_empty & pos_all file [] & info [] ~docv:"PLAN") in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit diagnostics as JSON.")
  in
  let exit_of (reports : P.report list) =
    List.fold_left
      (fun worst r ->
        if P.errors r > 0 then 2 else if P.warnings r > 0 then max worst 1 else worst)
      0 reports
  in
  let print_reports ~json pairs =
    if json then
      print_endline
        (J.print
           (J.Arr
              (List.map
                 (fun (path, (r : P.report)) ->
                   J.Obj
                     [
                       ("file", J.Str path);
                       ( "hash",
                         match P.hash r with Some h -> J.Str h | None -> J.Null );
                       ("errors", J.Num (float_of_int (P.errors r)));
                       ("warnings", J.Num (float_of_int (P.warnings r)));
                       ("diagnostics", J.Arr (List.map D.to_json r.P.diagnostics));
                     ])
                 pairs)))
    else begin
      List.iter
        (fun (path, (r : P.report)) ->
          List.iter
            (fun d -> Printf.printf "%s:%s\n" path (D.to_string d))
            r.P.diagnostics)
        pairs;
      let worst = exit_of (List.map snd pairs) in
      if worst = 0 then
        Printf.printf "%d plan%s clean\n" (List.length pairs)
          (if List.length pairs = 1 then "" else "s")
    end
  in
  let check_cmd =
    let run json paths =
      let pairs = List.map (fun path -> (path, P.check (read_file path))) paths in
      print_reports ~json pairs;
      exit_of (List.map snd pairs)
    in
    Cmd.v
      (Cmd.info "check"
         ~doc:
           "Statically verify capacity plans: units and ranges, threshold ordering, \
            share feasibility against admission capacity, rule shadowing. Exit status \
            is 0 when clean, 1 with warnings only, 2 with errors.")
      Term.(const run $ json_arg $ files_arg)
  in
  let compile_cmd =
    let run json paths =
      let pairs = List.map (fun path -> (path, P.compile (read_file path))) paths in
      if json then
        print_endline
          (J.print
             (J.Arr
                (List.map
                   (fun (path, (r : P.report)) ->
                     J.Obj
                       [
                         ("file", J.Str path);
                         ( "hash",
                           match P.hash r with Some h -> J.Str h | None -> J.Null );
                         ("errors", J.Num (float_of_int (P.errors r)));
                         ("warnings", J.Num (float_of_int (P.warnings r)));
                         ("diagnostics", J.Arr (List.map D.to_json r.P.diagnostics));
                         ( "nodes",
                           J.Arr
                             (List.map
                                (fun (l : Core.Provision.Lower.lowered) ->
                                  let c = l.Core.Provision.Lower.config in
                                  J.Obj
                                    [
                                      ("pattern", J.Str l.Core.Provision.Lower.node_pattern);
                                      ( "admission_capacity",
                                        J.Num
                                          (float_of_int c.Core.Node.Config.admission_capacity)
                                      );
                                      ( "shares",
                                        J.Arr
                                          (List.map
                                             (fun (site, f) ->
                                               J.Obj
                                                 [
                                                   ("site", J.Str site);
                                                   ("fraction", J.Num f);
                                                 ])
                                             c.Core.Node.Config.site_shares) );
                                    ])
                                r.P.lowered) );
                       ])
                   pairs)))
      else
        List.iter
          (fun (path, (r : P.report)) ->
            List.iter
              (fun d -> Printf.printf "%s:%s\n" path (D.to_string d))
              r.P.diagnostics;
            match P.hash r with
            | Some h when P.errors r = 0 ->
              Printf.printf "%s: plan %s -> %d node config(s)\n" path h
                (List.length r.P.lowered)
            | _ -> ())
          pairs;
      exit_of (List.map snd pairs)
    in
    Cmd.v
      (Cmd.info "compile"
         ~doc:
           "Verify capacity plans and lower them to node configurations; the lowered \
            configs additionally pass the node-construction validator, so a clean \
            compile is a config every node accepts.")
      Term.(const run $ json_arg $ files_arg)
  in
  let explain_cmd =
    let run paths =
      let pairs = List.map (fun path -> (path, P.compile (read_file path))) paths in
      List.iter
        (fun (path, (r : P.report)) ->
          List.iter
            (fun d -> Printf.printf "%s:%s\n" path (D.to_string d))
            r.P.diagnostics;
          if P.errors r = 0 then print_string (P.explain r))
        pairs;
      exit_of (List.map snd pairs)
    in
    Cmd.v
      (Cmd.info "explain"
         ~doc:
           "Show the lowering map of a verified plan: which plan field became which \
            node-config knob, plus the per-site share, quarantine and sandbox-cap \
            tables.")
      Term.(const run $ files_arg)
  in
  Cmd.group
    (Cmd.info "plan"
       ~doc:
         "Work with declarative capacity plans: $(b,check) verifies, $(b,compile) \
          lowers to node configs, $(b,explain) shows the lowering map.")
    [ check_cmd; compile_cmd; explain_cmd ]

(* A seeded chaos run: same envelope as the test suite's soak (drops
   <= 30%, partitions that always heal, at most one crash per proxy),
   derived deterministically from --seed so a failure seen in CI can be
   replayed locally with the same number. *)
let chaos_cmd =
  let module Plan = Core.Faults.Plan in
  let module Metrics = Core.Telemetry.Metrics in
  let seed_arg =
    Arg.(
      value & opt int 7
      & info [ "seed" ] ~docv:"N"
          ~doc:"Seed for the fault schedule; the same seed reproduces the same run.")
  in
  let epoch = 1_136_073_600.0 in
  let proxy_names =
    [ "nk-a.nakika.net"; "nk-b.nakika.net"; "nk-c.nakika.net"; "nk-d.nakika.net" ]
  in
  let random_plan seed =
    let rng = Core.Util.Prng.create seed in
    let plan = Plan.create ~seed () in
    Plan.drop_link plan ~probability:(Core.Util.Prng.float rng 0.30) ();
    if Core.Util.Prng.bool rng then
      Plan.spike_link plan
        ~probability:(Core.Util.Prng.float rng 0.2)
        ~extra:(Core.Util.Prng.float rng 2.0)
        ();
    let n_partitions = Core.Util.Prng.int rng 3 in
    for _ = 1 to n_partitions do
      let split = 1 + Core.Util.Prng.int rng 3 in
      let a = List.filteri (fun i _ -> i < split) proxy_names in
      let b = List.filteri (fun i _ -> i >= split) proxy_names in
      let at = epoch +. 5.0 +. Core.Util.Prng.float rng 25.0 in
      Plan.partition plan ~a ~b ~at ~heal:(at +. 2.0 +. Core.Util.Prng.float rng 8.0)
    done;
    List.iter
      (fun name ->
        if Core.Util.Prng.bool rng then begin
          let at = epoch +. 5.0 +. Core.Util.Prng.float rng 35.0 in
          Plan.crash plan ~host:name ~at ~restart:(at +. 1.0 +. Core.Util.Prng.float rng 9.0) ()
        end)
      proxy_names;
    plan
  in
  let run seed =
    let plan = random_plan seed in
    let cluster = Core.Node.Cluster.create ~seed ~faults:plan () in
    let origin = Core.Node.Cluster.add_origin cluster ~name:"www.example.edu" () in
    Core.Node.Origin.set_static origin ~path:"/index.html" ~max_age:60 "<html>chaos</html>";
    Core.Node.Origin.set_static origin ~path:"/other.html" ~max_age:60 "<html>other</html>";
    let proxies =
      List.map (fun name -> Core.Node.Cluster.add_proxy cluster ~name ()) proxy_names
    in
    let clients =
      [ Core.Node.Cluster.add_client cluster ~name:"c1";
        Core.Node.Cluster.add_client cluster ~name:"c2" ]
    in
    let sim = Core.Node.Cluster.sim cluster in
    let proxy_arr = Array.of_list proxies in
    let client_arr = Array.of_list clients in
    let issued = ref 0 and answered = ref 0 and ok = ref 0 in
    for i = 0 to 29 do
      Core.Sim.Sim.schedule_at sim
        (epoch +. 1.0 +. (2.0 *. float_of_int i))
        (fun () ->
          incr issued;
          let path = if i mod 3 = 0 then "/other.html" else "/index.html" in
          Core.Node.Cluster.fetch cluster
            ~client:client_arr.(i mod Array.length client_arr)
            ~proxy:proxy_arr.(i mod Array.length proxy_arr)
            ~timeout:15.0
            (Core.Http.Message.request ("http://www.example.edu" ^ path))
            (fun resp ->
              incr answered;
              if Core.Http.Status.is_success resp.Core.Http.Message.status then incr ok))
    done;
    Core.Sim.Sim.run ~until:(epoch +. 120.0) sim;
    let m = Metrics.create () in
    Metrics.merge ~into:m (Core.Sim.Net.metrics (Core.Node.Cluster.net cluster));
    Metrics.merge ~into:m
      (Core.Replication.Message_bus.metrics (Core.Node.Cluster.bus cluster));
    Metrics.merge ~into:m (Core.Overlay.Dht.metrics (Core.Node.Cluster.dht cluster));
    List.iter
      (fun p -> Metrics.merge ~into:m (Core.Node.Node.metrics p))
      proxies;
    Printf.printf "chaos run (seed %d): %s\n" seed (Plan.describe plan);
    Printf.printf "  requests:     %d issued, %d answered, %d ok, %d failed\n" !issued
      !answered !ok (!answered - !ok);
    Printf.printf "  stale served: %d\n" (Metrics.counter m "cache.stale_served");
    Printf.printf "  network:      %d dropped, %d callbacks lost to crashes\n"
      (Metrics.counter m "net.dropped")
      (Metrics.counter m "net.lost-callbacks");
    Printf.printf "  crashes:      %d\n" (Metrics.counter m "node.crashes");
    Printf.printf "  bus:          %d retries, %d dead letters\n"
      (Metrics.counter m "bus.retries")
      (Metrics.counter m "bus.dead_letters");
    Printf.printf "  dht:          %d replica fallbacks\n" (Metrics.counter m "dht.fallbacks");
    if !answered <> !issued then begin
      Printf.printf "  %d request(s) HUNG — this is a bug\n" (!issued - !answered);
      1
    end
    else 0
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a 4-node deployment under a seeded fault-injection schedule (message \
          drops, latency spikes, healing partitions, host crash/restart) and print a \
          degradation summary. The same seed reproduces the same run; exits non-zero \
          if any request hangs.")
    Term.(const run $ seed_arg)

let version_cmd =
  let run () =
    Printf.printf "nakika %s\n" Core.version;
    0
  in
  Cmd.v (Cmd.info "version" ~doc:"Print the library version.") Term.(const run $ const ())

let () =
  let info =
    Cmd.info "nakika" ~version:Core.version
      ~doc:"Development tools for the Na Kika edge-side computing network."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            exec_cmd; policies_cmd; lint_cmd; plan_cmd; fmt_cmd; nkp_cmd; demo_cmd;
            stats_cmd; trace_cmd; chaos_cmd; version_cmd;
          ]))
