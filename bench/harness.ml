(* Shared experiment plumbing: synchronous fetches over the simulator,
   table printing, and the paper-vs-measured report format. *)

(* Per-experiment telemetry: [begin_experiment] opens a fresh registry,
   load phases attach the proxies they drive, and [finish_experiment]
   merges every attached node's registry (plus the client-side counters
   recorded during the runs) and dumps it as BENCH_<id>.json — one JSON
   object per line — so future PRs get a perf trajectory. *)
type experiment = {
  id : string;
  registry : Core.Telemetry.Metrics.t;
  mutable nodes : Core.Node.Node.t list;
}

let current_experiment : experiment option ref = ref None

let registry () = Option.map (fun e -> e.registry) !current_experiment

let attach_node node =
  match !current_experiment with
  | Some e when not (List.memq node e.nodes) -> e.nodes <- node :: e.nodes
  | _ -> ()

let begin_experiment id =
  current_experiment :=
    Some { id; registry = Core.Telemetry.Metrics.create (); nodes = [] }

let finish_experiment () =
  match !current_experiment with
  | None -> ()
  | Some e ->
    List.iter
      (fun node ->
        Core.Telemetry.Metrics.merge ~into:e.registry (Core.Node.Node.metrics node))
      e.nodes;
    let path = Printf.sprintf "BENCH_%s.json" e.id in
    let oc = open_out path in
    output_string oc (Core.Telemetry.Metrics.to_json_lines e.registry);
    close_out oc;
    current_experiment := None

let fetch_sync cluster ~client ?proxy req =
  Option.iter attach_node proxy;
  let result = ref None in
  Core.Node.Cluster.fetch cluster ~client ?proxy req (fun resp -> result := Some resp);
  Core.Node.Cluster.run cluster;
  match !result with
  | Some r -> r
  | None -> failwith "harness: request never completed"

(* Allocation accounting: minor-heap words allocated per operation.
   [Gc.minor_words] counts every minor allocation (including values
   later promoted), so this is the allocation *rate* the op puts on the
   GC — the number the arena/zero-copy work drives down — not live
   memory. *)
let words_per_op ?(runs = 100) f =
  ignore (Sys.opaque_identity (f ()));
  let w0 = Gc.minor_words () in
  for _ = 1 to runs do
    ignore (Sys.opaque_identity (f ()))
  done;
  (Gc.minor_words () -. w0) /. float_of_int runs

let ms x = x *. 1000.0

let header title =
  Printf.printf "\n=== %s ===\n" title

let row fmt = Printf.printf fmt

let section title = Printf.printf "\n--- %s ---\n" title

(* Run a closed-loop load phase and report achieved throughput over the
   measurement window. *)
type load_result = {
  responses : int; (* 200s inside the window *)
  rejected : int; (* 503s inside the window *)
  errors : int; (* other non-200s *)
  duration : float;
  latency : Core.Util.Stats.t;
}

let throughput r = float_of_int r.responses /. r.duration

let run_load cluster ~clients ~proxy ~duration ~warmup ~make_request () =
  attach_node proxy;
  let sim = Core.Node.Cluster.sim cluster in
  let t0 = Core.Sim.Sim.now sim in
  let measure_start = t0 +. warmup in
  let until = measure_start +. duration in
  let responses = ref 0 and rejected = ref 0 and errors = ref 0 in
  let latency = Core.Util.Stats.create () in
  List.iteri
    (fun idx client ->
      Core.Workload.Driver.closed_loop cluster ~client ~proxy ~until
        ~make_request:(fun i -> make_request idx i)
        ~on_response:(fun _ _ resp elapsed ->
          if Core.Sim.Sim.now sim >= measure_start then begin
            (* Client-perceived view, recorded alongside the nodes' own
               registries in the experiment dump. *)
            (match registry () with
             | Some m ->
               Core.Telemetry.Metrics.incr m "client.responses";
               Core.Telemetry.Metrics.observe m "client.latency" elapsed
             | None -> ());
            match resp.Core.Http.Message.status with
            | 200 ->
              incr responses;
              Core.Util.Stats.add latency elapsed
            | 503 -> incr rejected
            | _ -> incr errors
          end)
        ())
    clients;
  Core.Node.Cluster.run cluster;
  { responses = !responses; rejected = !rejected; errors = !errors; duration; latency }

let paper_vs_measured ~label ~paper ~measured ~unit_ =
  Printf.printf "  %-42s paper %10s   measured %10s %s\n" label paper measured unit_
