(* Planet-scale capacity curve: goodput and p99 vs fleet size under a
   Zipf crowd, with hotspot replication off vs on (BENCH_scale.json).

   The topology models an open edge network: n proxies, one origin,
   and one client pinned near each proxy (cross-traffic latency is
   10x the local link, so the redirector's close-set keeps each
   client on its own edge node and the whole fleet absorbs the
   crowd). Demand is a fixed-rate open-loop stream whose URLs follow
   a Zipf(s = 0.9) popularity law over a 10k-URL universe — the same
   total demand at every fleet size, so the curve isolates how the
   overlay itself scales: at 1000 nodes almost every request is a
   first contact (perfect cache dilution) and the DHT's routing hops
   dominate, which is exactly the regime Coral-style sloppy
   replication of hot keys is supposed to rescue.

   Acceptance (checked in the printed report and exported as gauges):
   with replication on, 1000-node goodput stays within 90% of the
   100-node figure, and the p99 of hot-URL requests (the crowd's
   head, ranks 0-15) improves versus replication off.

   NAKIKA_SCALE_NODES (comma-separated fleet sizes) and
   NAKIKA_SCALE_REQUESTS override the defaults so CI can run a
   reduced curve. *)

module Metrics = Core.Telemetry.Metrics
module Sim = Core.Sim.Sim

let epoch = 1_136_073_600.0

let universe = 10_000
let skew = 0.9
let hot_ranks = 16 (* the crowd's head: URLs whose p99 the report tracks *)
let rate = 1200.0 (* requests/second, total, at every fleet size *)

let node_counts =
  match Sys.getenv_opt "NAKIKA_SCALE_NODES" with
  | None -> [ 10; 100; 1000 ]
  | Some s ->
    String.split_on_char ',' s
    |> List.filter_map (fun x -> int_of_string_opt (String.trim x))

let total_requests =
  match Option.bind (Sys.getenv_opt "NAKIKA_SCALE_REQUESTS") int_of_string_opt with
  | Some n -> n
  | None -> 36_000

type outcome = {
  nodes : int;
  replication : bool;
  issued : int;
  ok : int;
  rejected : int;
  errors : int;
  p99 : float;
  hot_p99 : float;
  mean_hops : float;
  sloppy_hits : int;
  replications : int;
  hotspots_live : int;
  events : int;
}

let goodput o = float_of_int o.ok /. float_of_int (max 1 o.issued)

let percentile sorted p =
  match sorted with
  | [||] -> 0.0
  | a -> a.(min (Array.length a - 1) (int_of_float (float_of_int (Array.length a) *. p)))

let run_arm ~nodes ~replication =
  let cluster =
    Core.Node.Cluster.create ~seed:4242 ~default_latency:0.005 ~default_bandwidth:12_500_000.0 ()
  in
  let origin = Core.Node.Cluster.add_origin cluster ~name:"www.crowd.example" () in
  for r = 0 to universe - 1 do
    Core.Node.Origin.set_static origin
      ~path:(Printf.sprintf "/zipf/%d.html" r)
      ~max_age:600
      (Printf.sprintf "<html>zipf rank %d</html>" r)
  done;
  let config =
    {
      Core.Node.Config.default with
      Core.Node.Config.enable_pipeline = false;
      enable_tracing = false;
      enable_resource_controls = false;
      lint_mode = `Off;
      enable_hotspots = replication;
      hotspot_threshold = 5.0;
      hotspot_replicas = 4;
      hotspot_ttl = 60.0;
      hotspot_halflife = 5.0;
    }
  in
  let proxies =
    List.init nodes (fun i ->
        Core.Node.Cluster.add_proxy cluster ~name:(Printf.sprintf "edge-%04d.nakika.net" i)
          ~config ())
  in
  let clients =
    List.mapi
      (fun i proxy ->
        let c = Core.Node.Cluster.add_client cluster ~name:(Printf.sprintf "client-%04d" i) in
        (* A client lives next to its edge node: 0.5 ms vs the 5 ms
           cross-traffic default, so the close-set pins it there. *)
        Core.Node.Cluster.connect cluster c (Core.Node.Node.host proxy) ~latency:0.0005
          ~bandwidth:12_500_000.0;
        c)
      proxies
    |> Array.of_list
  in
  let sim = Core.Node.Cluster.sim cluster in
  let zipf = Core.Workload.Zipf.create ~s:skew ~universe in
  (* The workload stream is drawn from its own PRNG, independent of
     the cluster's, so the off and on arms see the identical crowd. *)
  let wl = Core.Util.Prng.create 9001 in
  let issued = ref 0 and ok = ref 0 and rejected = ref 0 and errors = ref 0 in
  let latencies = ref [] and hot_latencies = ref [] in
  for i = 0 to total_requests - 1 do
    let at = epoch +. 5.0 +. (float_of_int i /. rate) in
    let rank = Core.Workload.Zipf.sample zipf wl in
    let client = clients.(Core.Util.Prng.int wl (Array.length clients)) in
    let url = Printf.sprintf "http://www.crowd.example/zipf/%d.html" rank in
    Sim.schedule_at sim at (fun () ->
        incr issued;
        let started = Sim.now sim in
        Core.Node.Cluster.fetch cluster ~client ~timeout:10.0 (Core.Http.Message.request url)
          (fun resp ->
            match resp.Core.Http.Message.status with
            | 200 ->
              incr ok;
              let elapsed = Sim.now sim -. started in
              latencies := elapsed :: !latencies;
              if rank < hot_ranks then hot_latencies := elapsed :: !hot_latencies
            | 503 -> incr rejected
            | _ -> incr errors))
  done;
  let horizon = epoch +. 5.0 +. (float_of_int total_requests /. rate) +. 15.0 in
  Sim.run ~until:horizon sim;
  let sorted l =
    let a = Array.of_list l in
    Array.sort compare a;
    a
  in
  let dht = Core.Node.Cluster.dht cluster in
  let dm = Core.Overlay.Dht.metrics dht in
  let mean_hops =
    match Metrics.histogram dm "dht.hops" with
    | Some h when Metrics.Histogram.count h > 0 ->
      Metrics.Histogram.sum h /. float_of_int (Metrics.Histogram.count h)
    | _ -> 0.0
  in
  {
    nodes;
    replication;
    issued = !issued;
    ok = !ok;
    rejected = !rejected;
    errors = !errors;
    p99 = percentile (sorted !latencies) 0.99;
    hot_p99 = percentile (sorted !hot_latencies) 0.99;
    mean_hops;
    sloppy_hits = Metrics.counter dm "dht.sloppy_hits";
    replications = Metrics.counter dm "dht.hotspot_replications";
    hotspots_live = List.length (Core.Overlay.Dht.hotspots dht ~now:(Sim.now sim));
    events = Sim.executed sim;
  }

let gauge_prefix o =
  Printf.sprintf "scale.n%d.%s" o.nodes (if o.replication then "on" else "off")

let export o =
  match Harness.registry () with
  | None -> ()
  | Some m ->
    let p = gauge_prefix o in
    Metrics.set_gauge m (p ^ ".goodput") (goodput o);
    Metrics.set_gauge m (p ^ ".p99") o.p99;
    Metrics.set_gauge m (p ^ ".hot-p99") o.hot_p99;
    Metrics.set_gauge m (p ^ ".mean-hops") o.mean_hops;
    Metrics.set_gauge m (p ^ ".issued") (float_of_int o.issued);
    Metrics.set_gauge m (p ^ ".ok") (float_of_int o.ok);
    Metrics.set_gauge m (p ^ ".sloppy-hits") (float_of_int o.sloppy_hits);
    Metrics.set_gauge m (p ^ ".hotspot-replications") (float_of_int o.replications);
    Metrics.set_gauge m (p ^ ".hotspots") (float_of_int o.hotspots_live);
    Metrics.set_gauge m (p ^ ".sim-events") (float_of_int o.events)

let scale () =
  Harness.header "Planet-scale capacity curve (Zipf crowd, hotspot replication off vs on)";
  Printf.printf "  universe %d URLs, skew %.1f, %d requests at %.0f req/s\n" universe skew
    total_requests rate;
  let outcomes =
    List.concat_map
      (fun nodes ->
        List.map
          (fun replication ->
            let o = run_arm ~nodes ~replication in
            Printf.printf
              "  %4d nodes %s: %5d ok/%5d  %4d shed  %3d err  p99 %6.1fms  hot-p99 %6.1fms  \
               hops %4.1f  sloppy %5d  repl %3d  (%d sim events)\n%!"
              nodes
              (if replication then "repl-on " else "repl-off")
              o.ok o.issued o.rejected o.errors (1000.0 *. o.p99) (1000.0 *. o.hot_p99)
              o.mean_hops o.sloppy_hits o.replications o.events;
            export o;
            o)
          [ false; true ])
      node_counts
  in
  let find nodes replication =
    List.find_opt (fun o -> o.nodes = nodes && o.replication = replication) outcomes
  in
  let biggest = List.fold_left max 0 node_counts in
  let mid = List.fold_left (fun acc n -> if n < biggest then max acc n else acc) 0 node_counts in
  (match (find biggest true, find mid true, find biggest false) with
   | Some big_on, Some mid_on, Some big_off when mid > 0 ->
     let ratio = goodput big_on /. Float.max 1e-9 (goodput mid_on) in
     let hot_gain = big_off.hot_p99 -. big_on.hot_p99 in
     Printf.printf
       "  goodput %d vs %d nodes (repl on): %.3f %s   hot-p99 %d nodes: off %.1fms on %.1fms %s\n"
       biggest mid ratio
       (if ratio >= 0.9 then "(>= 0.90: pass)" else "(BELOW TARGET)")
       biggest (1000.0 *. big_off.hot_p99) (1000.0 *. big_on.hot_p99)
       (if hot_gain > 0.0 then "(improved: pass)" else "(NOT IMPROVED)");
     (match Harness.registry () with
      | None -> ()
      | Some m ->
        Metrics.set_gauge m "scale.goodput-ratio-big-vs-mid" ratio;
        Metrics.set_gauge m "scale.hot-p99-off" big_off.hot_p99;
        Metrics.set_gauge m "scale.hot-p99-on" big_on.hot_p99;
        Metrics.set_gauge m "scale.hot-p99-gain" hot_gain)
   | _ -> ())
