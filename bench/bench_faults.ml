(* Fault tolerance: the chaos acceptance scenario as an experiment.
   The same 4-node topology and 30-request workload run twice — once
   fault-free and once under 10% uniform message drops plus a 15 s
   partition that heals — and the report checks that no request hangs
   (every fetch resolves, possibly with a synthesized 504) and that the
   degraded run keeps at least 80% of the baseline's successes.
   BENCH_faults.json records both success rates next to the degraded
   run's fault-layer counters (net.dropped, bus.retries,
   bus.dead_letters, node.crashes, dht.fallbacks, cache.stale_served). *)

module Plan = Core.Faults.Plan
module Metrics = Core.Telemetry.Metrics

(* The simulator's default start time; fault plans use absolute times
   and are built before the cluster exists. *)
let epoch = 1_136_073_600.0

let proxy_names =
  [ "nk-a.nakika.net"; "nk-b.nakika.net"; "nk-c.nakika.net"; "nk-d.nakika.net" ]

(* Mirrors the chaos test suite's workload: 30 requests over 60 s from
   two clients, round-robined over the four proxies, each with a 15 s
   client timeout. Only the [attach]ed run's registries land in the
   experiment dump, so baseline and degraded counters do not mix. *)
let run_scenario ~attach plan =
  let cluster = Core.Node.Cluster.create ~seed:(Plan.seed plan) ~faults:plan () in
  let origin = Core.Node.Cluster.add_origin cluster ~name:"www.example.edu" () in
  Core.Node.Origin.set_static origin ~path:"/index.html" ~max_age:60 "<html>chaos</html>";
  Core.Node.Origin.set_static origin ~path:"/other.html" ~max_age:60 "<html>other</html>";
  let proxies =
    List.map (fun name -> Core.Node.Cluster.add_proxy cluster ~name ()) proxy_names
  in
  let clients =
    [ Core.Node.Cluster.add_client cluster ~name:"c1";
      Core.Node.Cluster.add_client cluster ~name:"c2" ]
  in
  let sim = Core.Node.Cluster.sim cluster in
  let proxy_arr = Array.of_list proxies in
  let client_arr = Array.of_list clients in
  let issued = ref 0 and answered = ref 0 and ok = ref 0 in
  for i = 0 to 29 do
    Core.Sim.Sim.schedule_at sim
      (epoch +. 1.0 +. (2.0 *. float_of_int i))
      (fun () ->
        incr issued;
        let path = if i mod 3 = 0 then "/other.html" else "/index.html" in
        Core.Node.Cluster.fetch cluster
          ~client:client_arr.(i mod Array.length client_arr)
          ~proxy:proxy_arr.(i mod Array.length proxy_arr)
          ~timeout:15.0
          (Core.Http.Message.request ("http://www.example.edu" ^ path))
          (fun resp ->
            incr answered;
            if Core.Http.Status.is_success resp.Core.Http.Message.status then incr ok))
  done;
  (* Past the last client timeout (offset 59 + 15 s) with slack for
     retry and anti-entropy daemons. *)
  Core.Sim.Sim.run ~until:(epoch +. 120.0) sim;
  if attach then begin
    List.iter Harness.attach_node proxies;
    match Harness.registry () with
    | Some m ->
      Metrics.merge ~into:m (Core.Sim.Net.metrics (Core.Node.Cluster.net cluster));
      Metrics.merge ~into:m
        (Core.Replication.Message_bus.metrics (Core.Node.Cluster.bus cluster));
      Metrics.merge ~into:m (Core.Overlay.Dht.metrics (Core.Node.Cluster.dht cluster))
    | None -> ()
  end;
  (!issued, !answered, !ok)

let rate ok issued = 100.0 *. float_of_int ok /. float_of_int (max 1 issued)

let faults () =
  Harness.header "Fault tolerance (chaos acceptance scenario)";
  let b_issued, b_answered, b_ok = run_scenario ~attach:false (Plan.create ~seed:3 ()) in
  let plan = Plan.create ~seed:3 () in
  Plan.drop_link plan ~probability:0.10 ();
  Plan.partition plan
    ~a:[ "nk-a.nakika.net"; "nk-b.nakika.net" ]
    ~b:[ "nk-c.nakika.net"; "nk-d.nakika.net" ]
    ~at:(epoch +. 10.0) ~heal:(epoch +. 25.0);
  let d_issued, d_answered, d_ok = run_scenario ~attach:true plan in
  let hung = b_issued - b_answered + (d_issued - d_answered) in
  let ratio = float_of_int d_ok /. float_of_int (max 1 b_ok) in
  Printf.printf "  %-34s %3d issued  %3d answered  %3d ok  (%.0f%% success)\n"
    "fault-free baseline:" b_issued b_answered b_ok (rate b_ok b_issued);
  Printf.printf "  %-34s %3d issued  %3d answered  %3d ok  (%.0f%% success)\n"
    "10% drops + healed partition:" d_issued d_answered d_ok (rate d_ok d_issued);
  Printf.printf "  hung requests: %d   degraded/baseline success ratio: %.2f %s\n" hung
    ratio
    (if hung = 0 && ratio >= 0.8 then "(>= 0.80: pass)" else "(BELOW TARGET)");
  match Harness.registry () with
  | None -> ()
  | Some m ->
    Metrics.set_gauge m "faults.baseline-success-rate" (rate b_ok b_issued);
    Metrics.set_gauge m "faults.degraded-success-rate" (rate d_ok d_issued);
    Metrics.set_gauge m "faults.success-ratio" ratio;
    Metrics.set_gauge m "faults.hung-requests" (float_of_int hung)
