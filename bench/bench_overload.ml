(* Overload resilience: the flash-crowd acceptance scenario as an
   experiment. The same 3-node topology and workload run twice — once
   fault-free and once with one proxy crashing mid-crowd (it restarts)
   and one origin dead for the rest of the run — and the report checks
   that goodput stays at >= 70% of the baseline with a bounded p99.
   The degraded run composes every overload defense: admission control
   sheds the spike's excess, the redirector routes around the crashed
   node, the dead origin's circuit breaker fails fast (bounding how
   many requests ever reach it), and stale-if-error keeps serving its
   content. BENCH_overload.json records both runs' goodput, the p99s,
   and the defense counters (admission.sheds, breaker.opens,
   cache.stale_served, quarantine.bans).

   CI reruns this under NAKIKA_CHAOS_SEED 1-3; the seed perturbs the
   cluster PRNG (redirection spread, workload jitter), not the fault
   schedule, which stays fixed so the two runs are comparable. *)

module Plan = Core.Faults.Plan
module Metrics = Core.Telemetry.Metrics
module Sim = Core.Sim.Sim

let epoch = 1_136_073_600.0

let seed_base =
  match int_of_string_opt (try Sys.getenv "NAKIKA_CHAOS_SEED" with Not_found -> "0") with
  | Some n -> n * 1_000_003
  | None -> 0

let proxy_names = [ "nk-a.nakika.net"; "nk-b.nakika.net"; "nk-c.nakika.net" ]

type outcome = {
  issued : int;
  ok : int;
  rejected : int;
  errors : int;
  dead_origin_hits : int;
  p99 : float;
}

let goodput o = float_of_int o.ok /. float_of_int (max 1 o.issued)

(* The workload, identical across runs:
   - a flash crowd: 600 requests for one hot page inside ~1.2 s —
     enough to overrun a node's admission queue — issued through the
     redirector (so health-aware redirection decides which node absorbs
     each), and
   - a background stream of 30 requests over 30 s for a page whose
     origin dies in the degraded run (short max-age, so after the first
     copy expires only stale-if-error can keep answering). *)
let run_scenario ~attach plan =
  let cluster = Core.Node.Cluster.create ~seed:(seed_base + Plan.seed plan) ~faults:plan () in
  let origin = Core.Node.Cluster.add_origin cluster ~name:"www.example.edu" () in
  Core.Node.Origin.set_static origin ~path:"/hot.html" ~max_age:60 "<html>flash crowd</html>";
  let dead = Core.Node.Cluster.add_origin cluster ~name:"dead.example.org" () in
  Core.Node.Origin.set_static dead ~path:"/item.html" ~max_age:2 "<html>fragile</html>";
  let proxies =
    List.map (fun name -> Core.Node.Cluster.add_proxy cluster ~name ()) proxy_names
  in
  let clients =
    [
      Core.Node.Cluster.add_client cluster ~name:"c1";
      Core.Node.Cluster.add_client cluster ~name:"c2";
      Core.Node.Cluster.add_client cluster ~name:"c3";
    ]
  in
  let sim = Core.Node.Cluster.sim cluster in
  let client_arr = Array.of_list clients in
  let issued = ref 0 and ok = ref 0 and rejected = ref 0 and errors = ref 0 in
  let latencies = ref [] in
  let fetch_at at url =
    Sim.schedule_at sim at (fun () ->
        incr issued;
        let started = Sim.now sim in
        Core.Node.Cluster.fetch cluster
          ~client:client_arr.(!issued mod Array.length client_arr)
          ~timeout:10.0 (Core.Http.Message.request url)
          (fun resp ->
            match resp.Core.Http.Message.status with
            | 200 ->
              incr ok;
              latencies := (Sim.now sim -. started) :: !latencies
            | 503 -> incr rejected
            | _ -> incr errors))
  in
  for i = 0 to 599 do
    fetch_at (epoch +. 5.0 +. (0.002 *. float_of_int i)) "http://www.example.edu/hot.html"
  done;
  for i = 0 to 29 do
    fetch_at (epoch +. 1.0 +. float_of_int i) "http://dead.example.org/item.html"
  done;
  (* Past the last client timeout (offset 30 + 10 s) with slack for the
     restarted node's daemons. *)
  Sim.run ~until:(epoch +. 90.0) sim;
  if attach then begin
    List.iter Harness.attach_node proxies;
    match Harness.registry () with
    | Some m -> Metrics.merge ~into:m (Core.Sim.Net.metrics (Core.Node.Cluster.net cluster))
    | None -> ()
  end;
  let p99 =
    match List.sort compare !latencies with
    | [] -> 0.0
    | sorted ->
      let n = List.length sorted in
      List.nth sorted (min (n - 1) (int_of_float (Float.of_int n *. 0.99)))
  in
  {
    issued = !issued;
    ok = !ok;
    rejected = !rejected;
    errors = !errors;
    dead_origin_hits = Core.Node.Origin.request_count dead;
    p99;
  }

let overload () =
  Harness.header "Overload resilience (flash crowd + crash + dead origin)";
  let baseline = run_scenario ~attach:false (Plan.create ~seed:5 ()) in
  let plan = Plan.create ~seed:5 () in
  (* One node crashes as the crowd peaks and restarts 15 s later; the
     fragile origin dies just before the background stream's cached
     copy expires and never comes back. *)
  Plan.crash plan ~host:"nk-b.nakika.net" ~at:(epoch +. 5.6) ~restart:(epoch +. 21.0) ();
  Plan.fail_origin plan ~host:"dead.example.org" ~at:(epoch +. 4.0) ~until:(epoch +. 90.0) ();
  let degraded = run_scenario ~attach:true plan in
  let ratio = goodput degraded /. Float.max 1e-9 (goodput baseline) in
  let report label o =
    Printf.printf "  %-28s %3d issued  %3d ok  %3d shed  %3d errors  p99 %6.3fs  (%.0f%% goodput)\n"
      label o.issued o.ok o.rejected o.errors o.p99 (100.0 *. goodput o)
  in
  report "fault-free baseline:" baseline;
  report "crash + dead origin:" degraded;
  Printf.printf "  dead-origin fetches: baseline %d, degraded %d (breaker-bounded)\n"
    baseline.dead_origin_hits degraded.dead_origin_hits;
  Printf.printf "  goodput ratio: %.2f %s   degraded p99: %.3fs %s\n" ratio
    (if ratio >= 0.7 then "(>= 0.70: pass)" else "(BELOW TARGET)")
    degraded.p99
    (if degraded.p99 <= 8.0 then "(bounded: pass)" else "(UNBOUNDED)");
  match Harness.registry () with
  | None -> ()
  | Some m ->
    Metrics.set_gauge m "overload.baseline-goodput" (goodput baseline);
    Metrics.set_gauge m "overload.degraded-goodput" (goodput degraded);
    Metrics.set_gauge m "overload.goodput-ratio" ratio;
    Metrics.set_gauge m "overload.baseline-p99" baseline.p99;
    Metrics.set_gauge m "overload.degraded-p99" degraded.p99;
    Metrics.set_gauge m "overload.dead-origin-hits" (float_of_int degraded.dead_origin_hits)
