(* Tail tolerance: the deadline/hedging acceptance scenario. A Zipf
   crowd is served through one edge proxy whose cache is too small to
   hold anything, so every request is a cooperative-cache fetch from
   the replica set (nk-b holds the newest announcement and is always
   the primary). The link to that primary suffers injected latency
   spikes — a few percent of messages pay +1.5 s one way — which is
   pure p99 poison: goodput is unaffected, only the tail stretches.

   The same topology, workload, and fault schedule run twice: once
   with the tail machinery off (the seed baseline) and once with
   deadlines, hedged replica fetches, and retry budgets on. The report
   checks that hedging collapses p99 (the hedge fires after the
   upstream's observed p95 and the backup replica answers in
   milliseconds), that goodput is unchanged, and that the hedge
   governor kept the extra load within its token-bucket bound.
   BENCH_tail.json records both runs plus the hedge/deadline counters.

   CI reruns this under NAKIKA_CHAOS_SEED 1-3; the seed perturbs the
   cluster PRNG and the fault plan's draw stream, not the workload
   shape, which stays fixed so the two runs are comparable. *)

module Metrics = Core.Telemetry.Metrics
module Sim = Core.Sim.Sim
module Plan = Core.Faults.Plan

let epoch = 1_136_073_600.0

let seed_base =
  match int_of_string_opt (try Sys.getenv "NAKIKA_CHAOS_SEED" with Not_found -> "0") with
  | Some n -> n * 1_000_003
  | None -> 0

let holder_a = "nk-a.nakika.net"
let holder_b = "nk-b.nakika.net" (* warmed last -> newest announcement -> primary *)
let edge = "nk-c.nakika.net"
let universe = 8
let total_requests = 600
let spike_extra = 1.5
let spike_probability = 0.02

type outcome = {
  issued : int;
  ok : int;
  rejected : int;
  errors : int;
  p50 : float;
  p99 : float;
  hedges : int;
  wins : int;
  cancelled : int;
  expired : int;
}

let goodput o = float_of_int o.ok /. float_of_int (max 1 o.issued)

let percentile sorted p =
  match sorted with
  | [||] -> 0.0
  | a -> a.(min (Array.length a - 1) (int_of_float (float_of_int (Array.length a) *. p)))

let run_scenario ~attach ~tail () =
  let plan = Plan.create ~seed:(11 + seed_base) () in
  Plan.spike_link plan ~src:edge ~dst:holder_b ~probability:spike_probability
    ~extra:spike_extra ();
  let cluster = Core.Node.Cluster.create ~seed:(seed_base + 7) ~faults:plan () in
  let origin = Core.Node.Cluster.add_origin cluster ~name:"www.crowd.example" () in
  for r = 0 to universe - 1 do
    Core.Node.Origin.set_static origin
      ~path:(Printf.sprintf "/zipf/%d.html" r)
      ~max_age:600
      (Printf.sprintf "<html>zipf rank %d</html>" r)
  done;
  let base =
    {
      Core.Node.Config.default with
      Core.Node.Config.enable_pipeline = false;
      enable_tracing = false;
      enable_resource_controls = false;
      lint_mode = `Off;
    }
  in
  (* The edge proxy cannot keep anything (one-byte cache), so the crowd
     exercises the peer-fetch path on every request; the tail knobs go
     on only in the enabled arm. *)
  let edge_config =
    let c = { base with Core.Node.Config.cache_bytes = 1 } in
    if tail then
      {
        c with
        Core.Node.Config.request_deadline = 2.5;
        enable_hedging = true;
        hedge_rate = 0.05;
        retry_budget_ratio = 0.1;
      }
    else c
  in
  let pa = Core.Node.Cluster.add_proxy cluster ~name:holder_a ~config:base () in
  let pb = Core.Node.Cluster.add_proxy cluster ~name:holder_b ~config:base () in
  let pc = Core.Node.Cluster.add_proxy cluster ~name:edge ~config:edge_config () in
  ignore pa;
  ignore pb;
  let client = Core.Node.Cluster.add_client cluster ~name:"c1" in
  let sim = Core.Node.Cluster.sim cluster in
  (* Warm every rank at both holders: nk-a first, then nk-b, so nk-b's
     DHT announcement is the newer one and every edge lookup fetches
     from nk-b — the link under fault injection. *)
  List.iter
    (fun proxy ->
      for r = 0 to universe - 1 do
        Core.Node.Cluster.fetch cluster ~client ~proxy
          (Core.Http.Message.request
             (Printf.sprintf "http://www.crowd.example/zipf/%d.html" r))
          (fun _ -> ())
      done;
      Core.Node.Cluster.run cluster)
    [ pa; pb ];
  (* The crowd: Zipf(s = 0.9) over the warmed universe, drawn from its
     own PRNG so both arms see the identical request stream. *)
  let zipf = Core.Workload.Zipf.create ~s:0.9 ~universe in
  let wl = Core.Util.Prng.create 9001 in
  let issued = ref 0 and ok = ref 0 and rejected = ref 0 and errors = ref 0 in
  let latencies = ref [] in
  for i = 0 to total_requests - 1 do
    let rank = Core.Workload.Zipf.sample zipf wl in
    Sim.schedule_at sim
      (epoch +. 5.0 +. (0.01 *. float_of_int i))
      (fun () ->
        incr issued;
        let started = Sim.now sim in
        Core.Node.Cluster.fetch cluster ~client ~proxy:pc ~timeout:10.0
          (Core.Http.Message.request
             (Printf.sprintf "http://www.crowd.example/zipf/%d.html" rank))
          (fun resp ->
            match resp.Core.Http.Message.status with
            | 200 ->
              incr ok;
              latencies := (Sim.now sim -. started) :: !latencies
            | 503 -> incr rejected
            | _ -> incr errors))
  done;
  Sim.run ~until:(epoch +. 5.0 +. (0.01 *. float_of_int total_requests) +. 20.0) sim;
  if attach then begin
    Harness.attach_node pc;
    match Harness.registry () with
    | Some m -> Metrics.merge ~into:m (Core.Sim.Net.metrics (Core.Node.Cluster.net cluster))
    | None -> ()
  end;
  let sorted = Array.of_list (List.sort compare !latencies) in
  let mc = Core.Node.Node.metrics pc in
  {
    issued = !issued;
    ok = !ok;
    rejected = !rejected;
    errors = !errors;
    p50 = percentile sorted 0.50;
    p99 = percentile sorted 0.99;
    hedges = Metrics.counter_total mc "hedge.issued";
    wins = Metrics.counter_total mc "hedge.wins";
    cancelled = Metrics.counter_total mc "hedge.cancelled";
    expired = Metrics.counter_total mc "deadline.expired";
  }

let tail () =
  Harness.header "Tail tolerance (Zipf crowd through one edge, latency-spiked primary)";
  let baseline = run_scenario ~attach:false ~tail:false () in
  let hedged = run_scenario ~attach:true ~tail:true () in
  let report label o =
    Printf.printf
      "  %-22s %3d issued  %3d ok  %2d shed  %2d errors  p50 %6.3fs  p99 %6.3fs  (%.0f%% \
       goodput)\n"
      label o.issued o.ok o.rejected o.errors o.p50 o.p99 (100.0 *. goodput o)
  in
  report "tail machinery off:" baseline;
  report "deadlines + hedging:" hedged;
  let overhead = float_of_int hedged.hedges /. float_of_int (max 1 hedged.issued) in
  Printf.printf "  hedges %d (%.1f%% of load)  wins %d  cancelled %d  deadline-expired %d\n"
    hedged.hedges (100.0 *. overhead) hedged.wins hedged.cancelled hedged.expired;
  let p99_ratio = hedged.p99 /. Float.max 1e-9 baseline.p99 in
  Printf.printf "  p99 %.3fs -> %.3fs (%.0f%% %s)   goodput %.2f vs %.2f %s   overhead %s\n"
    baseline.p99 hedged.p99 (100.0 *. p99_ratio)
    (if p99_ratio <= 0.6 then "of baseline: pass" else "NOT <= 60%")
    (goodput baseline) (goodput hedged)
    (if Float.abs (goodput hedged -. goodput baseline) <= 0.02 then "(within 2%: pass)"
     else "(DIVERGED)")
    (* The governor's bound is rate * primaries plus the initial burst
       (100 * rate tokens); anything above that means the bucket leaked. *)
    (if
       float_of_int hedged.hedges
       <= (0.05 *. float_of_int hedged.issued) +. (100.0 *. 0.05) +. 1.0
     then "(<= 5% + burst: pass)"
     else "(OVER BUDGET)");
  match Harness.registry () with
  | None -> ()
  | Some m ->
    Metrics.set_gauge m "tail.baseline-p99" baseline.p99;
    Metrics.set_gauge m "tail.enabled-p99" hedged.p99;
    Metrics.set_gauge m "tail.p99-ratio" p99_ratio;
    Metrics.set_gauge m "tail.baseline-goodput" (goodput baseline);
    Metrics.set_gauge m "tail.enabled-goodput" (goodput hedged);
    Metrics.set_gauge m "tail.hedge-overhead" overhead;
    Metrics.set_gauge m "tail.hedge-wins" (float_of_int hedged.wins);
    Metrics.set_gauge m "tail.deadline-expired" (float_of_int hedged.expired)
