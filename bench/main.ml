(* The benchmark harness: regenerates every table and figure in the
   paper's evaluation (see DESIGN.md's per-experiment index).

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- table2  # one experiment

   Experiments: table1 table2 micro-costs capacity resource-controls
   figure7 simm-local specweb extensions integrity ablations faults
   overload provision diffusion micro scale tail

   "micro-guard" is special: it re-measures the fast-path micro rows
   against the committed BENCH_micro.json and exits non-zero on a >25%
   regression (NAKIKA_BENCH_GUARD_SKIP=1 bypasses). It runs outside the
   experiment registry so it never rewrites a BENCH_*.json. *)

let experiments =
  [
    ("table1", Bench_table2.table1);
    ("table2", Bench_table2.table2);
    ("micro-costs", Bench_capacity.micro_costs);
    ("capacity", Bench_capacity.capacity);
    ("resource-controls", Bench_capacity.resource_controls);
    ("figure7", Bench_figure7.figure7);
    ("simm-local", Bench_figure7.simm_local);
    ("specweb", Bench_specweb.specweb);
    ("extensions", Bench_extensions.extensions);
    ("integrity", Bench_integrity.integrity);
    ("ablations", Bench_ablations.ablations);
    ("faults", Bench_faults.faults);
    ("overload", Bench_overload.overload);
    ("provision", Bench_provision.provision);
    ("diffusion", Bench_diffusion.diffusion);
    ("tail", Bench_tail.tail);
    ("micro", Bench_micro.micro);
    ("scale", Bench_scale.scale);
  ]

(* Real (process CPU) time per experiment, reported once at the end. *)
let profile = Core.Telemetry.Profile.create ()

let run_experiment name run =
  Harness.begin_experiment name;
  Fun.protect
    ~finally:(fun () -> Harness.finish_experiment ())
    (fun () -> Core.Telemetry.Profile.time profile name run)

let print_profile () =
  Printf.printf "\n=== Bench profile (process CPU seconds) ===\n%s"
    (Core.Telemetry.Profile.to_table profile)

let () =
  let requested = List.tl (Array.to_list Sys.argv) in
  (match requested with
   | [] ->
     print_endline "Na Kika reproduction: full benchmark suite";
     List.iter (fun (name, run) -> run_experiment name run) experiments
   | names ->
     List.iter
       (fun name ->
         if name = "micro-guard" then Bench_micro.guard ()
         else
           match List.assoc_opt name experiments with
           | Some run -> run_experiment name run
           | None ->
             Printf.eprintf "unknown experiment %S; available: %s micro-guard\n" name
               (String.concat " " (List.map fst experiments));
             exit 1)
       names);
  print_profile ()
