(* §5.1 micro-benchmarks M1/M2: node capacity with and without the
   scripting pipeline, the per-operation costs, and the effectiveness of
   congestion-based resource controls under a flash crowd with a
   misbehaving (memory bomb) script. *)

let duration = 20.0

let warmup = 3.0

let make_cluster ~controls ~with_bomb () =
  let config =
    { Core.Node.Config.default with Core.Node.Config.enable_resource_controls = controls }
  in
  let cluster = Core.Node.Cluster.create ~seed:5 () in
  let good = Core.Node.Cluster.add_origin cluster ~name:Core.Workload.Flashcrowd.good_host () in
  Core.Workload.Flashcrowd.install_good_site good;
  if with_bomb then begin
    let bomb = Core.Node.Cluster.add_origin cluster ~name:Core.Workload.Flashcrowd.bomb_host () in
    Core.Workload.Flashcrowd.install_bomb_site bomb
  end;
  let proxy = Core.Node.Cluster.add_proxy cluster ~name:"nk1.nakika.net" ~config () in
  (cluster, proxy)

let plain_cluster () =
  let cluster = Core.Node.Cluster.create ~seed:5 () in
  let good = Core.Node.Cluster.add_origin cluster ~name:Core.Workload.Flashcrowd.good_host () in
  Core.Workload.Flashcrowd.install_good_site good;
  let proxy =
    Core.Node.Cluster.add_proxy cluster ~name:"nk1.nakika.net"
      ~config:Core.Node.Config.plain_proxy ()
  in
  (cluster, proxy)

let clients cluster n =
  List.init n (fun i ->
      Core.Node.Cluster.add_client cluster ~name:(Printf.sprintf "lg%d" i))

let run_good_load ?(extra_bomb_clients = 0) (cluster, proxy) ~generators =
  let good_clients = clients cluster generators in
  let bomb_clients =
    List.init extra_bomb_clients (fun i ->
        Core.Node.Cluster.add_client cluster ~name:(Printf.sprintf "bomb-lg%d" i))
  in
  (* Bomb clients run their own loop; measurements track the good site. *)
  let sim = Core.Node.Cluster.sim cluster in
  let until = Core.Sim.Sim.now sim +. warmup +. duration in
  List.iter
    (fun client ->
      Core.Workload.Driver.closed_loop cluster ~client ~proxy ~until
        ~make_request:(fun _ -> Core.Workload.Flashcrowd.bomb_request ())
        ~on_response:(fun _ _ _ _ -> ())
        ())
    bomb_clients;
  let result =
    Harness.run_load cluster ~clients:good_clients ~proxy ~duration ~warmup
      ~make_request:(fun _ _ -> Core.Workload.Flashcrowd.good_request ())
      ()
  in
  (result, proxy)

let micro_costs () =
  Harness.header "Per-operation costs (the §5.1 cost model constants)";
  let c = Core.Node.Config.default_costs in
  List.iter
    (fun (label, paper, ours) ->
      Harness.paper_vs_measured ~label ~paper ~measured:ours ~unit_:"")
    [
      ("retrieve resource from cache", "1.1 ms", Printf.sprintf "%.2f ms" (1000.0 *. c.Core.Node.Config.cache_hit));
      ("create scripting context", "1.5 ms", Printf.sprintf "%.2f ms" (1000.0 *. c.Core.Node.Config.context_create));
      ("reuse scripting context", "3 us", Printf.sprintf "%.1f us" (1e6 *. c.Core.Node.Config.context_reuse));
      ("cached decision tree", "4 us", Printf.sprintf "%.1f us" (1e6 *. c.Core.Node.Config.tree_cached));
      ("predicate evaluation", "< 38 us", Printf.sprintf "%.1f us" (1e6 *. c.Core.Node.Config.predicate_eval));
      ("parse+execute script (size-dependent)", "0.08-17.8 ms",
       Printf.sprintf "%.2f ms + %.1f us/B" (1000.0 *. c.Core.Node.Config.parse_base)
         (1e6 *. c.Core.Node.Config.parse_per_byte));
    ]

let capacity () =
  Harness.header "Capacity: plain proxy vs Match-1 (requests/second at saturation)";
  let plain30, _ = run_good_load (plain_cluster ()) ~generators:30 in
  let plain90, _ = run_good_load (plain_cluster ()) ~generators:90 in
  let m1_30, _ = run_good_load (make_cluster ~controls:false ~with_bomb:false ()) ~generators:30 in
  let m1_90, _ = run_good_load (make_cluster ~controls:false ~with_bomb:false ()) ~generators:90 in
  Harness.paper_vs_measured ~label:"plain proxy, 30 generators" ~paper:"603 rps"
    ~measured:(Printf.sprintf "%.0f rps" (Harness.throughput plain30)) ~unit_:"";
  Harness.paper_vs_measured ~label:"plain proxy, 90 generators" ~paper:"-"
    ~measured:(Printf.sprintf "%.0f rps" (Harness.throughput plain90)) ~unit_:"";
  Harness.paper_vs_measured ~label:"Match-1, 30 generators (no controls)" ~paper:"294 rps"
    ~measured:(Printf.sprintf "%.0f rps" (Harness.throughput m1_30)) ~unit_:"";
  Harness.paper_vs_measured ~label:"Match-1, 90 generators (no controls)" ~paper:"229 rps"
    ~measured:(Printf.sprintf "%.0f rps" (Harness.throughput m1_90)) ~unit_:"";
  Printf.printf "  shape check: plain proxy ~2x Match-1; overload degrades without controls\n"

let fraction part total = if total = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int total

let resource_controls () =
  Harness.header "Resource controls (§5.1): flash crowd with and without CONTROL";
  let report label paper (r : Harness.load_result) proxy =
    (* Reject/drop fractions are over everything the node was offered,
       including the misbehaving site's requests. *)
    let trace = Core.Node.Node.trace proxy in
    let offered = Core.Sim.Trace.count trace "requests" in
    Printf.printf
      "  %-44s paper %8s  measured %6.0f rps  (rejects %5.2f%%, drops %5.2f%%%s)\n" label paper
      (Harness.throughput r)
      (fraction (Core.Sim.Trace.count trace "rejected-throttle") offered)
      (fraction (Core.Sim.Trace.count trace "dropped-termination") offered)
      (match Core.Node.Node.terminated_sites proxy with
       | [] -> ""
       | sites -> Printf.sprintf "; terminated: %s" (List.hd sites));
    (* The monitor's decisions as structured telemetry: site-labeled
       counters plus the throttle/terminate event stream. *)
    let metrics = Core.Node.Node.metrics proxy in
    let throttles = Core.Telemetry.Metrics.counter_total metrics "monitor.throttles" in
    let terminations = Core.Telemetry.Metrics.counter_total metrics "monitor.terminations" in
    if throttles > 0 || terminations > 0 then begin
      Printf.printf "      monitor decisions: %d throttle(s), %d termination(s)\n"
        throttles terminations;
      let events = Core.Telemetry.Events.to_list (Core.Node.Node.events proxy) in
      let tail =
        let n = List.length events in
        List.filteri (fun i _ -> i >= n - 3) events
      in
      List.iter
        (fun e ->
          Printf.printf "        %s\n" (Core.Telemetry.Events.event_to_string e))
        tail
    end
  in
  let r1, p1 = run_good_load (make_cluster ~controls:false ~with_bomb:false ()) ~generators:30 in
  report "30 generators, no controls" "294 rps" r1 p1;
  let r2, p2 = run_good_load (make_cluster ~controls:true ~with_bomb:false ()) ~generators:30 in
  report "30 generators, with controls" "396 rps" r2 p2;
  let r3, p3 = run_good_load (make_cluster ~controls:false ~with_bomb:false ()) ~generators:90 in
  report "90 generators, no controls" "229 rps" r3 p3;
  let r4, p4 = run_good_load (make_cluster ~controls:true ~with_bomb:false ()) ~generators:90 in
  report "90 generators, with controls" "356 rps" r4 p4;
  let r5, p5 =
    run_good_load
      (make_cluster ~controls:false ~with_bomb:true ())
      ~generators:30 ~extra_bomb_clients:1
  in
  report "30 generators + memory bomb, no controls" "47 rps" r5 p5;
  let r6, p6 =
    run_good_load
      (make_cluster ~controls:true ~with_bomb:true ())
      ~generators:30 ~extra_bomb_clients:1
  in
  report "30 generators + memory bomb, with controls" "382 rps" r6 p6;
  Printf.printf
    "  shape check: without controls the bomb collapses throughput; with controls the\n";
  Printf.printf
    "  monitor throttles then terminates the offending site and the good site survives\n"
