(* Provisioning acceptance: a verified multi-tenant capacity plan,
   lowered by nk_provision into the proxy's config, must actually
   deliver the declared fair shares under a flash crowd.

   Three tenants declare 50/30/20 shares of a 20-slot admission queue.
   Every tenant offers far more load than its slice can serve (16
   closed-loop generators each against a ~600 rps node), so the queue
   stays contended for the whole run and the fair-share gate — not
   demand — decides who gets in. The per-site fraction of successful
   responses then measures the share each tenant actually received;
   the experiment passes when every measured share is within 10%
   (relative) of the declared one, and BENCH_provision.json records
   declared vs measured per site. *)

module Metrics = Core.Telemetry.Metrics
module Sim = Core.Sim.Sim
module P = Core.Provision.Provision

let plan_text =
  "# bench: three tenants with declared fair shares\n\
   node \"*\" {\n\
  \  capacity { admission = 20; target = 500ms }\n\
   }\n\
   site \"video.example\" { share >= 50% }\n\
   site \"news.example\"  { share >= 30% }\n\
   site \"shop.example\"  { share >= 20% }\n"

let tenants = [ ("video.example", 0.50); ("news.example", 0.30); ("shop.example", 0.20) ]

let generators_per_site = 16

let warmup = 3.0

let duration = 15.0

let provision () =
  Harness.header "Provisioned fair shares (plan-declared vs measured under overload)";
  let report = P.compile plan_text in
  if P.errors report > 0 then begin
    List.iter
      (fun d -> Printf.printf "  %s\n" (Core.Analysis.Diagnostic.to_string d))
      report.P.diagnostics;
    failwith "bench_provision: the embedded plan failed to verify"
  end;
  let config =
    match P.config_for report ~node:"nk1.nakika.net" with
    | Some c -> c
    | None -> failwith "bench_provision: plan lowered no config for the proxy"
  in
  (match P.hash report with
   | Some h -> Printf.printf "  plan %s -> admission %d slots\n" (String.sub h 0 12)
                 config.Core.Node.Config.admission_capacity
   | None -> ());
  let cluster = Core.Node.Cluster.create ~seed:11 () in
  List.iter
    (fun (site, _) ->
      let origin = Core.Node.Cluster.add_origin cluster ~name:site () in
      Core.Node.Origin.set_static origin ~path:"/index.html" ~max_age:300
        (Printf.sprintf "<html>%s</html>" site))
    tenants;
  let proxy = Core.Node.Cluster.add_proxy cluster ~name:"nk1.nakika.net" ~config () in
  Harness.attach_node proxy;
  let sim = Core.Node.Cluster.sim cluster in
  let t0 = Sim.now sim in
  let measure_from = t0 +. warmup in
  let until = measure_from +. duration in
  let ok = Hashtbl.create 4 and shed = Hashtbl.create 4 in
  let bump table site =
    Hashtbl.replace table site (1 + Option.value ~default:0 (Hashtbl.find_opt table site))
  in
  List.iter
    (fun (site, _) ->
      for g = 0 to generators_per_site - 1 do
        let client =
          Core.Node.Cluster.add_client cluster ~name:(Printf.sprintf "%s-lg%d" site g)
        in
        Core.Workload.Driver.closed_loop cluster ~client ~proxy ~until ~think:0.005
          ~make_request:(fun _ ->
            Core.Http.Message.request (Printf.sprintf "http://%s/index.html" site))
          ~on_response:(fun _ _ resp _ ->
            if Sim.now sim >= measure_from then
              if resp.Core.Http.Message.status = 200 then bump ok site
              else bump shed site)
          ()
      done)
    tenants;
  Sim.run ~until:(until +. 5.0) sim;
  let ok_of site = Option.value ~default:0 (Hashtbl.find_opt ok site) in
  let total_ok = List.fold_left (fun acc (site, _) -> acc + ok_of site) 0 tenants in
  let worst = ref 0.0 in
  List.iter
    (fun (site, declared) ->
      let measured = float_of_int (ok_of site) /. float_of_int (max 1 total_ok) in
      let rel_err = Float.abs (measured -. declared) /. declared in
      worst := Float.max !worst rel_err;
      Printf.printf "  %-16s declared %4.0f%%  measured %5.1f%%  (%d ok, %d shed, err %4.1f%%)\n"
        site (100.0 *. declared) (100.0 *. measured) (ok_of site)
        (Option.value ~default:0 (Hashtbl.find_opt shed site))
        (100.0 *. rel_err);
      match Harness.registry () with
      | None -> ()
      | Some m ->
        Metrics.set_gauge m (Printf.sprintf "provision.%s.declared" site) declared;
        Metrics.set_gauge m (Printf.sprintf "provision.%s.measured" site) measured)
    tenants;
  Printf.printf "  worst relative error: %.1f%% %s\n" (100.0 *. !worst)
    (if !worst <= 0.10 then "(<= 10%: pass)" else "(ABOVE TARGET)");
  match Harness.registry () with
  | None -> ()
  | Some m ->
    Metrics.set_gauge m "provision.total-ok" (float_of_int total_ok);
    Metrics.set_gauge m "provision.worst-relative-error" !worst
