(* Bechamel micro-benchmarks of the real OCaml implementation — one
   Test.make per reproduced table/figure, measuring the operations that
   artifact exercises. The simulated experiments report the paper's
   latencies under the 2006 cost model; these report what our code
   actually costs on the present machine. *)

open Bechamel
open Toolkit

let payload_1k = String.init 1024 (fun i -> Char.chr (i mod 256))

(* Table 2 / M1: predicate evaluation, decision trees, script handling. *)
let policies_100 =
  List.init 100 (fun i ->
      Core.Policy.Policy.make ~urls:[ Printf.sprintf "site%d.org" i ] ~order:i ())

let tree_100 = Core.Policy.Decision_tree.build policies_100

let match_request = Core.Http.Message.request "http://site42.org/x"

let match1_script = Core.Workload.Static_page.pred_script ~host:"h.org" ~n:0 ~matching:true

let handler_stage =
  match
    Core.Pipeline.Stage.of_script ~url:"bench" ~host:(Core.Vocab.Hostcall.stub ())
      ~source:
        {|
var p = new Policy();
p.onResponse = function() {
  var body = "", c;
  while ((c = Response.read()) != null) { body += c; }
  Response.write(body.toUpperCase());
}
p.register();
|}
      ()
  with
  | Ok s -> s
  | Error e -> failwith e

let handler =
  match Core.Pipeline.Stage.policies handler_stage with
  | [ p ] -> Option.get p.Core.Policy.Policy.on_response
  | _ -> assert false

let run_handler () =
  let req = Core.Http.Message.request "http://x.org/" in
  let resp = Core.Http.Message.response ~body:Core.Workload.Static_page.page_body () in
  ignore (Core.Pipeline.Pipeline.run_handler handler_stage ~this_request:req ~response:(Some resp) handler)

(* F7 / E1: the XML rendering the SIMM site script performs. *)
let lecture_xml = Core.Workload.Simm.lecture_xml ~module_:1 ~lecture:1 ~student:"bench"

(* Fig. 2: image transcoding. *)
let image_352x416 =
  Core.Vocab.Image.encode (Core.Vocab.Image.synthesize ~width:352 ~height:416 ~seed:2)
    Core.Vocab.Image.Rle

let cache_for_bench = Core.Cache.Http_cache.create ()

let () =
  Core.Cache.Http_cache.insert cache_for_bench ~now:0.0 ~key:"bench" ~expiry:(Some 1e9)
    (Core.Http.Message.response ~body:payload_1k ())

let regex_ua = Core.Regex.Regex.compile "Nokia|SonyEricsson|Samsung"

(* C1: the NKScript execution pipeline — parse, closure-compile, and the
   two execution modes — on a standard handler-style workload (string
   building + arithmetic, the shape of the M1 onResponse handler). The
   tree-walk row is the pre-compiler baseline; the cached-execute row is
   what a warm stage pays per invocation. *)
let workload_script =
  {|
function handler() {
  var s = "";
  for (var i = 0; i < 60; i++) { s += "x"; }
  var n = 0;
  for (var i = 0; i < 40; i++) { n += i * i; }
  return s.length + n;
}
handler();
|}

let workload_ast = Core.Script.Parser.parse workload_script

let workload_prog = Core.Script.Compile.compile workload_ast

let fresh_ctx () =
  let ctx = Core.Script.Interp.create () in
  Core.Script.Builtins.install ctx;
  ctx

let tw_ctx = fresh_ctx ()

let cp_ctx = fresh_ctx ()

(* Named so the regression guard can re-run exactly these two. *)
let test_cached_execute =
  Test.make ~name:"C1: cached execute (compiled)"
    (Staged.stage (fun () ->
         Core.Script.Interp.reset_usage cp_ctx;
         ignore (Core.Script.Compile.run cp_ctx workload_prog)))

let test_transcode =
  Test.make ~name:"Fig2: transcode 352x416 -> 176x208"
    (Staged.stage (fun () ->
         match Core.Vocab.Image.decode image_352x416 with
         | Ok (img, _) ->
           Core.Vocab.Image.encode
             (Core.Vocab.Image.scale img ~width:176 ~height:208)
             Core.Vocab.Image.Rle
         | Error e -> failwith e))

(* O9: overlay membership at planet scale — join/leave and successor
   lookups on a 1000-node ring. Named (and guarded) so the O(log n)
   ordered-set membership cannot silently regress to the old
   re-sort-per-join / array-round-trip-per-leave behavior. *)
let ring_1000 =
  let r = Core.Overlay.Ring.create () in
  for i = 1 to 1000 do
    Core.Overlay.Ring.join r (Core.Overlay.Node_id.of_string (Printf.sprintf "bench-node-%d" i))
  done;
  r

let ring_counter = ref 0

let test_ring_churn =
  Test.make ~name:"O9: ring join+leave (n=1000)"
    (Staged.stage (fun () ->
         incr ring_counter;
         let id = Core.Overlay.Node_id.of_int (!ring_counter land 0xfffff) in
         Core.Overlay.Ring.join ring_1000 id;
         Core.Overlay.Ring.leave ring_1000 id))

let test_ring_successor =
  Test.make ~name:"O9: ring successor (n=1000)"
    (Staged.stage (fun () ->
         incr ring_counter;
         ignore
           (Core.Overlay.Ring.successor ring_1000
              (Core.Overlay.Node_id.of_int (!ring_counter land 0x3fffff)))))

(* D1: the tail-tolerance fast path — what every request pays once
   deadlines are on (admission + per-hop clamp + expiry check), and
   what every peer fetch pays once hedging is on (token accounting +
   p95 delay from a warm histogram + the hedge grant). Both guarded:
   these sit on the per-request path of every tail-enabled node. *)
let deadline_req =
  let r = Core.Http.Message.request "http://x.org/" in
  Core.Http.Message.set_req_header r Core.Resource.Deadline.header "1.5";
  r

let test_deadline_check =
  Test.make ~name:"D1: deadline check (admit+clamp+expired)"
    (Staged.stage (fun () ->
         match Core.Resource.Deadline.admit ~now:100.0 ~budget:2.5 deadline_req with
         | Some d ->
           ignore (Core.Resource.Deadline.clamp d ~now:100.2 3.0);
           ignore (Core.Resource.Deadline.expired d ~now:100.2)
         | None -> assert false))

let hedge_histogram =
  let m = Core.Telemetry.Metrics.create () in
  for _ = 1 to 40 do
    Core.Telemetry.Metrics.observe m "fetch.latency" 0.02
  done;
  Core.Telemetry.Metrics.histogram m "fetch.latency"

(* rate 1.0: each primary earns a full token, so the per-op cost stays
   the grant path (never the dry-bucket early-out). *)
let hedge_governor = Core.Resource.Hedge.create ~rate:1.0 ()

let test_hedge_decision =
  Test.make ~name:"D1: hedge decision (note+delay+grant)"
    (Staged.stage (fun () ->
         Core.Resource.Hedge.note_primary hedge_governor;
         ignore (Core.Resource.Hedge.delay ?histogram:hedge_histogram ~fallback:0.75 ());
         ignore (Core.Resource.Hedge.try_hedge hedge_governor)))

let tests =
  Test.make_grouped ~name:"nakika"
    [
      Test.make ~name:"T2/X1: sha256 1KB" (Staged.stage (fun () -> Core.Crypto.Sha256.digest payload_1k));
      Test.make ~name:"T2: header regex match"
        (Staged.stage (fun () -> Core.Regex.Regex.matches regex_ua "Mozilla/4.0 (Nokia6600)"));
      Test.make ~name:"T2: decision tree lookup (100 policies)"
        (Staged.stage (fun () -> Core.Policy.Decision_tree.find_closest tree_100 match_request));
      Test.make ~name:"T2: brute-force match (100 policies)"
        (Staged.stage (fun () -> Core.Policy.Policy.closest_match policies_100 match_request));
      Test.make ~name:"T2: parse Match-1 site script"
        (Staged.stage (fun () -> Core.Script.Parser.parse match1_script));
      Test.make ~name:"M1: run onResponse handler (2KB body)" (Staged.stage run_handler);
      Test.make ~name:"C1: parse handler script"
        (Staged.stage (fun () -> Core.Script.Parser.parse workload_script));
      Test.make ~name:"C1: compile parsed script"
        (Staged.stage (fun () -> Core.Script.Compile.compile workload_ast));
      Test.make ~name:"C1: tree-walk execute"
        (Staged.stage (fun () ->
             Core.Script.Interp.reset_usage tw_ctx;
             ignore (Core.Script.Interp.run tw_ctx workload_ast)));
      test_cached_execute;
      Test.make ~name:"C1: first execute (parse+compile+run)"
        (Staged.stage (fun () ->
             ignore
               (Core.Script.Compile.run (fresh_ctx ())
                  (Core.Script.Compile.compile (Core.Script.Parser.parse workload_script)))));
      (* L1: admission-time lint — a full four-pass analysis versus the
         SHA-256 report cache hit a recurring stage build pays. *)
      Test.make ~name:"L1: analyze handler script (uncached)"
        (Staged.stage (fun () ->
             Core.Analysis.Analysis.cache_clear ();
             ignore (Core.Analysis.Analysis.analyze_source workload_script)));
      Test.make ~name:"L1: analyze handler script (cached)"
        (Staged.stage (fun () ->
             ignore (Core.Analysis.Analysis.analyze_source workload_script)));
      Test.make ~name:"T2: proxy cache hit"
        (Staged.stage (fun () -> Core.Cache.Http_cache.lookup cache_for_bench ~now:1.0 ~key:"bench"));
      Test.make ~name:"F7: parse+render lecture XML"
        (Staged.stage (fun () ->
             Core.Vocab.Xml.to_html Core.Workload.Simm.stylesheet
               (Core.Vocab.Xml.parse_exn lecture_xml)));
      test_transcode;
      test_ring_churn;
      test_ring_successor;
      test_deadline_check;
      test_hedge_decision;
      Test.make ~name:"E2: render register.nkp page"
        (Staged.stage (fun () ->
             let ctx = Core.Script.Interp.create () in
             Core.Script.Builtins.install ctx;
             Core.Vocab.Eval_v.install ctx;
             Core.Script.Interp.define_global ctx "Request"
               (Core.Script.Value.native "q" (fun _ _ -> Core.Script.Value.Vnull));
             ignore (Core.Pipeline.Nkp.render ctx "x<?nkp 1 + 1 ?>y")));
    ]

(* The dynamic rows (bechamel Test.t values built at [micro ()] time,
   not module load time): the registry warm-start row must enable the
   persistent registry, and doing that at module initialization would
   turn it on for every experiment in the binary — it defaults off. *)
let registry_bench_dir =
  Filename.concat (Filename.get_temp_dir_name ()) "nakika-bench-registry"

let warm_start_test () =
  (* Model a node restart with a warm registry: the entry is on disk,
     the in-memory cache is dropped, and [preload_registry] (what node
     creation runs) compiles it back in. The measured op is then the
     site's first execute on the request path — hash lookup + run, no
     parse and no disk. The restart cost itself (disk load + compile)
     happens once, off the request path; it is printed separately. *)
  Core.Script.Registry.set_dir (Some registry_bench_dir);
  Core.Script.Compile.cache_clear ();
  ignore (Core.Script.Compile.get_program workload_script);
  Core.Script.Compile.cache_clear ();
  let t0 = Unix.gettimeofday () in
  let loaded = Core.Script.Compile.preload_registry () in
  let t1 = Unix.gettimeofday () in
  Printf.printf "  %-44s %d entr%s in %8.2f us\n" "C1: registry preload (node start)" loaded
    (if loaded = 1 then "y" else "ies")
    ((t1 -. t0) *. 1e6);
  let ctx = fresh_ctx () in
  Test.make ~name:"C1: warm-start first execute (registry)"
    (Staged.stage (fun () ->
         Core.Script.Interp.reset_usage ctx;
         ignore (Core.Script.Compile.run ctx (Core.Script.Compile.get_program workload_script))))

let run_tests tests =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 100) () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols_result acc ->
      match Analyze.OLS.estimates ols_result with
      | Some (est :: _) -> (name, est) :: acc
      | _ -> (name, nan) :: acc)
    results []
  |> List.sort compare

(* Allocation rates for the rows the fast-path work targets. *)
let words_rows () =
  [
    ( "C1: cached execute (compiled)",
      Harness.words_per_op (fun () ->
          Core.Script.Interp.reset_usage cp_ctx;
          Core.Script.Compile.run cp_ctx workload_prog) );
    ( "C1: tree-walk execute",
      Harness.words_per_op (fun () ->
          Core.Script.Interp.reset_usage tw_ctx;
          Core.Script.Interp.run tw_ctx workload_ast) );
    ( "F7: parse+render lecture XML",
      Harness.words_per_op (fun () ->
          Core.Vocab.Xml.to_html Core.Workload.Simm.stylesheet
            (Core.Vocab.Xml.parse_exn lecture_xml)) );
    ( "Fig2: transcode 352x416 -> 176x208",
      Harness.words_per_op (fun () ->
          match Core.Vocab.Image.decode image_352x416 with
          | Ok (img, _) ->
            Core.Vocab.Image.encode
              (Core.Vocab.Image.scale img ~width:176 ~height:208)
              Core.Vocab.Image.Rle
          | Error e -> failwith e) );
  ]

let micro () =
  Harness.header "Bechamel micro-benchmarks (real implementation, this machine)";
  let rows = run_tests tests in
  let rows =
    let registry_rows =
      Fun.protect
        ~finally:(fun () -> Core.Script.Registry.set_dir None)
        (fun () -> run_tests (Test.make_grouped ~name:"nakika" [ warm_start_test () ]))
    in
    List.sort compare (rows @ registry_rows)
  in
  List.iter
    (fun (name, ns) ->
      let pretty =
        if ns >= 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else if ns >= 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
        else Printf.sprintf "%8.0f ns" ns
      in
      Printf.printf "  %-44s %s/op\n" name pretty)
    rows;
  (* Persist the rows (and the headline compiler speedup) into the
     experiment registry so BENCH_micro.json carries the interpreter
     baseline forward. *)
  let find_row sub =
    List.find_opt (fun (name, _) -> Core.Util.Strutil.contains_sub name ~sub) rows
  in
  let speedup =
    match (find_row "C1: tree-walk execute", find_row "C1: cached execute") with
    | Some (_, tw), Some (_, cp) when cp > 0.0 -> Some (tw /. cp)
    | _ -> None
  in
  (match speedup with
   | Some s -> Printf.printf "  %-44s %8.2f x\n" "C1: compiled speedup over tree-walk" s
   | None -> ());
  let words = words_rows () in
  List.iter
    (fun (name, w) -> Printf.printf "  %-44s %8.0f minor words/op\n" name w)
    words;
  let stats = Core.Script.Compile.cache_stats () in
  Printf.printf "  %-44s %d hits / %d misses / %d entries\n" "C1: compiled-program cache" stats.Core.Script.Compile.hits
    stats.Core.Script.Compile.misses stats.Core.Script.Compile.entries;
  let rstats = Core.Script.Registry.stats () in
  Printf.printf "  %-44s %d hits / %d misses / %d stores / %d rejects\n"
    "C1: persistent program registry" rstats.Core.Script.Registry.hits
    rstats.Core.Script.Registry.misses rstats.Core.Script.Registry.stores
    rstats.Core.Script.Registry.rejects;
  match Harness.registry () with
  | None -> ()
  | Some m ->
    List.iter
      (fun (name, ns) ->
        Core.Telemetry.Metrics.set_gauge m ~labels:[ ("test", name) ] "micro.ns_per_op" ns)
      rows;
    List.iter
      (fun (name, w) ->
        Core.Telemetry.Metrics.set_gauge m ~labels:[ ("test", name) ] "micro.words_per_op" w)
      words;
    (match speedup with
     | Some s -> Core.Telemetry.Metrics.set_gauge m "micro.compiled_speedup" s
     | None -> ());
    Core.Telemetry.Metrics.set_gauge m "micro.compile_cache.hits" (float_of_int stats.Core.Script.Compile.hits);
    Core.Telemetry.Metrics.set_gauge m "micro.compile_cache.misses"
      (float_of_int stats.Core.Script.Compile.misses);
    Core.Telemetry.Metrics.set_gauge m "micro.registry.hits"
      (float_of_int rstats.Core.Script.Registry.hits);
    Core.Telemetry.Metrics.set_gauge m "micro.registry.rejects"
      (float_of_int rstats.Core.Script.Registry.rejects)

(* --- bench-regression guard ------------------------------------------- *)

(* CI gate: re-measure the guarded fast-path rows (interpreter,
   transcode, 1000-node ring membership) and fail if any regressed
   more than [tolerance] against the committed BENCH_micro.json. Noise discipline: each row is measured three times
   and the *minimum* is compared — "has the code gotten slower" is a
   question about the best case, not the scheduler. Escape hatch:
   NAKIKA_BENCH_GUARD_SKIP=1 (for machines with incomparable baselines). *)

let guard_rows =
  [
    "nakika/C1: cached execute (compiled)";
    "nakika/Fig2: transcode 352x416 -> 176x208";
    "nakika/O9: ring join+leave (n=1000)";
    "nakika/O9: ring successor (n=1000)";
    "nakika/D1: deadline check (admit+clamp+expired)";
    "nakika/D1: hedge decision (note+delay+grant)";
  ]

let guard_tolerance = 1.25

let baseline_ns path =
  (* BENCH_micro.json is JSON-lines; pick out micro.ns_per_op gauges. *)
  let ic = open_in path in
  let entries = ref [] in
  (try
     while true do
       let line = input_line ic in
       match Core.Vocab.Json.parse line with
       | Ok (Core.Vocab.Json.Obj fields) ->
         let str k =
           match List.assoc_opt k fields with
           | Some (Core.Vocab.Json.Str s) -> Some s
           | _ -> None
         in
         if str "name" = Some "micro.ns_per_op" then begin
           match (List.assoc_opt "labels" fields, List.assoc_opt "value" fields) with
           | Some (Core.Vocab.Json.Obj labels), Some (Core.Vocab.Json.Num v) -> (
             match List.assoc_opt "test" labels with
             | Some (Core.Vocab.Json.Str test) -> entries := (test, v) :: !entries
             | _ -> ())
           | _ -> ()
         end
       | _ -> ()
     done
   with End_of_file -> close_in ic);
  !entries

let guard () =
  Harness.header "Bench-regression guard (fast-path rows vs committed BENCH_micro.json)";
  match Sys.getenv_opt "NAKIKA_BENCH_GUARD_SKIP" with
  | Some _ -> print_endline "  NAKIKA_BENCH_GUARD_SKIP set; skipping."
  | None ->
    let path = "BENCH_micro.json" in
    if not (Sys.file_exists path) then
      Printf.printf "  no %s baseline; nothing to guard.\n" path
    else begin
      let baseline = baseline_ns path in
      let guard_tests =
        Test.make_grouped ~name:"nakika"
          [
            test_cached_execute;
            test_transcode;
            test_ring_churn;
            test_ring_successor;
            test_deadline_check;
            test_hedge_decision;
          ]
      in
      (* min over three measurement rounds, per row *)
      let fresh_rows =
        List.fold_left
          (fun acc _ ->
            List.map
              (fun (name, ns) ->
                match List.assoc_opt name acc with
                | Some prev -> (name, Float.min prev ns)
                | None -> (name, ns))
              (run_tests guard_tests))
          (run_tests guard_tests)
          [ (); () ]
      in
      let failures = ref 0 in
      List.iter
        (fun name ->
          match List.assoc_opt name baseline with
          | None -> Printf.printf "  %-44s no baseline row; skipped\n" name
          | Some base ->
            let now = List.assoc_opt name fresh_rows |> Option.value ~default:nan in
            let ratio = now /. base in
            let verdict =
              if Float.is_nan now then "UNMEASURED"
              else if ratio > guard_tolerance then begin
                incr failures;
                "REGRESSED"
              end
              else "ok"
            in
            Printf.printf "  %-44s %8.2f us -> %8.2f us  (%.2fx)  %s\n" name
              (base /. 1e3) (now /. 1e3) ratio verdict)
        guard_rows;
      if !failures > 0 then begin
        Printf.eprintf
          "bench guard: %d row(s) regressed >%.0f%%; set NAKIKA_BENCH_GUARD_SKIP=1 to bypass.\n"
          !failures ((guard_tolerance -. 1.0) *. 100.0);
        exit 1
      end
    end
