(* Bechamel micro-benchmarks of the real OCaml implementation — one
   Test.make per reproduced table/figure, measuring the operations that
   artifact exercises. The simulated experiments report the paper's
   latencies under the 2006 cost model; these report what our code
   actually costs on the present machine. *)

open Bechamel
open Toolkit

let payload_1k = String.init 1024 (fun i -> Char.chr (i mod 256))

(* Table 2 / M1: predicate evaluation, decision trees, script handling. *)
let policies_100 =
  List.init 100 (fun i ->
      Core.Policy.Policy.make ~urls:[ Printf.sprintf "site%d.org" i ] ~order:i ())

let tree_100 = Core.Policy.Decision_tree.build policies_100

let match_request = Core.Http.Message.request "http://site42.org/x"

let match1_script = Core.Workload.Static_page.pred_script ~host:"h.org" ~n:0 ~matching:true

let handler_stage =
  match
    Core.Pipeline.Stage.of_script ~url:"bench" ~host:(Core.Vocab.Hostcall.stub ())
      ~source:
        {|
var p = new Policy();
p.onResponse = function() {
  var body = "", c;
  while ((c = Response.read()) != null) { body += c; }
  Response.write(body.toUpperCase());
}
p.register();
|}
      ()
  with
  | Ok s -> s
  | Error e -> failwith e

let handler =
  match Core.Pipeline.Stage.policies handler_stage with
  | [ p ] -> Option.get p.Core.Policy.Policy.on_response
  | _ -> assert false

let run_handler () =
  let req = Core.Http.Message.request "http://x.org/" in
  let resp = Core.Http.Message.response ~body:Core.Workload.Static_page.page_body () in
  ignore (Core.Pipeline.Pipeline.run_handler handler_stage ~this_request:req ~response:(Some resp) handler)

(* F7 / E1: the XML rendering the SIMM site script performs. *)
let lecture_xml = Core.Workload.Simm.lecture_xml ~module_:1 ~lecture:1 ~student:"bench"

(* Fig. 2: image transcoding. *)
let image_352x416 =
  Core.Vocab.Image.encode (Core.Vocab.Image.synthesize ~width:352 ~height:416 ~seed:2)
    Core.Vocab.Image.Rle

let cache_for_bench = Core.Cache.Http_cache.create ()

let () =
  Core.Cache.Http_cache.insert cache_for_bench ~now:0.0 ~key:"bench" ~expiry:(Some 1e9)
    (Core.Http.Message.response ~body:payload_1k ())

let regex_ua = Core.Regex.Regex.compile "Nokia|SonyEricsson|Samsung"

(* C1: the NKScript execution pipeline — parse, closure-compile, and the
   two execution modes — on a standard handler-style workload (string
   building + arithmetic, the shape of the M1 onResponse handler). The
   tree-walk row is the pre-compiler baseline; the cached-execute row is
   what a warm stage pays per invocation. *)
let workload_script =
  {|
function handler() {
  var s = "";
  for (var i = 0; i < 60; i++) { s += "x"; }
  var n = 0;
  for (var i = 0; i < 40; i++) { n += i * i; }
  return s.length + n;
}
handler();
|}

let workload_ast = Core.Script.Parser.parse workload_script

let workload_prog = Core.Script.Compile.compile workload_ast

let fresh_ctx () =
  let ctx = Core.Script.Interp.create () in
  Core.Script.Builtins.install ctx;
  ctx

let tw_ctx = fresh_ctx ()

let cp_ctx = fresh_ctx ()

let tests =
  Test.make_grouped ~name:"nakika"
    [
      Test.make ~name:"T2/X1: sha256 1KB" (Staged.stage (fun () -> Core.Crypto.Sha256.digest payload_1k));
      Test.make ~name:"T2: header regex match"
        (Staged.stage (fun () -> Core.Regex.Regex.matches regex_ua "Mozilla/4.0 (Nokia6600)"));
      Test.make ~name:"T2: decision tree lookup (100 policies)"
        (Staged.stage (fun () -> Core.Policy.Decision_tree.find_closest tree_100 match_request));
      Test.make ~name:"T2: brute-force match (100 policies)"
        (Staged.stage (fun () -> Core.Policy.Policy.closest_match policies_100 match_request));
      Test.make ~name:"T2: parse Match-1 site script"
        (Staged.stage (fun () -> Core.Script.Parser.parse match1_script));
      Test.make ~name:"M1: run onResponse handler (2KB body)" (Staged.stage run_handler);
      Test.make ~name:"C1: parse handler script"
        (Staged.stage (fun () -> Core.Script.Parser.parse workload_script));
      Test.make ~name:"C1: compile parsed script"
        (Staged.stage (fun () -> Core.Script.Compile.compile workload_ast));
      Test.make ~name:"C1: tree-walk execute"
        (Staged.stage (fun () ->
             Core.Script.Interp.reset_usage tw_ctx;
             ignore (Core.Script.Interp.run tw_ctx workload_ast)));
      Test.make ~name:"C1: cached execute (compiled)"
        (Staged.stage (fun () ->
             Core.Script.Interp.reset_usage cp_ctx;
             ignore (Core.Script.Compile.run cp_ctx workload_prog)));
      Test.make ~name:"C1: first execute (parse+compile+run)"
        (Staged.stage (fun () ->
             ignore
               (Core.Script.Compile.run (fresh_ctx ())
                  (Core.Script.Compile.compile (Core.Script.Parser.parse workload_script)))));
      (* L1: admission-time lint — a full four-pass analysis versus the
         SHA-256 report cache hit a recurring stage build pays. *)
      Test.make ~name:"L1: analyze handler script (uncached)"
        (Staged.stage (fun () ->
             Core.Analysis.Analysis.cache_clear ();
             ignore (Core.Analysis.Analysis.analyze_source workload_script)));
      Test.make ~name:"L1: analyze handler script (cached)"
        (Staged.stage (fun () ->
             ignore (Core.Analysis.Analysis.analyze_source workload_script)));
      Test.make ~name:"T2: proxy cache hit"
        (Staged.stage (fun () -> Core.Cache.Http_cache.lookup cache_for_bench ~now:1.0 ~key:"bench"));
      Test.make ~name:"F7: parse+render lecture XML"
        (Staged.stage (fun () ->
             Core.Vocab.Xml.to_html Core.Workload.Simm.stylesheet
               (Core.Vocab.Xml.parse_exn lecture_xml)));
      Test.make ~name:"Fig2: transcode 352x416 -> 176x208"
        (Staged.stage (fun () ->
             match Core.Vocab.Image.decode image_352x416 with
             | Ok (img, _) ->
               Core.Vocab.Image.encode
                 (Core.Vocab.Image.scale img ~width:176 ~height:208)
                 Core.Vocab.Image.Rle
             | Error e -> failwith e));
      Test.make ~name:"E2: render register.nkp page"
        (Staged.stage (fun () ->
             let ctx = Core.Script.Interp.create () in
             Core.Script.Builtins.install ctx;
             Core.Vocab.Eval_v.install ctx;
             Core.Script.Interp.define_global ctx "Request"
               (Core.Script.Value.native "q" (fun _ _ -> Core.Script.Value.Vnull));
             ignore (Core.Pipeline.Nkp.render ctx "x<?nkp 1 + 1 ?>y")));
    ]

let micro () =
  Harness.header "Bechamel micro-benchmarks (real implementation, this machine)";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 100) () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        match Analyze.OLS.estimates ols_result with
        | Some (est :: _) -> (name, est) :: acc
        | _ -> (name, nan) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, ns) ->
      let pretty =
        if ns >= 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else if ns >= 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
        else Printf.sprintf "%8.0f ns" ns
      in
      Printf.printf "  %-44s %s/op\n" name pretty)
    rows;
  (* Persist the rows (and the headline compiler speedup) into the
     experiment registry so BENCH_micro.json carries the interpreter
     baseline forward. *)
  let find_row sub =
    List.find_opt (fun (name, _) -> Core.Util.Strutil.contains_sub name ~sub) rows
  in
  let speedup =
    match (find_row "C1: tree-walk execute", find_row "C1: cached execute") with
    | Some (_, tw), Some (_, cp) when cp > 0.0 -> Some (tw /. cp)
    | _ -> None
  in
  (match speedup with
   | Some s -> Printf.printf "  %-44s %8.2f x\n" "C1: compiled speedup over tree-walk" s
   | None -> ());
  let stats = Core.Script.Compile.cache_stats () in
  Printf.printf "  %-44s %d hits / %d misses / %d entries\n" "C1: compiled-program cache" stats.Core.Script.Compile.hits
    stats.Core.Script.Compile.misses stats.Core.Script.Compile.entries;
  match Harness.registry () with
  | None -> ()
  | Some m ->
    List.iter
      (fun (name, ns) ->
        Core.Telemetry.Metrics.set_gauge m ~labels:[ ("test", name) ] "micro.ns_per_op" ns)
      rows;
    (match speedup with
     | Some s -> Core.Telemetry.Metrics.set_gauge m "micro.compiled_speedup" s
     | None -> ());
    Core.Telemetry.Metrics.set_gauge m "micro.compile_cache.hits" (float_of_int stats.Core.Script.Compile.hits);
    Core.Telemetry.Metrics.set_gauge m "micro.compile_cache.misses"
      (float_of_int stats.Core.Script.Compile.misses)
