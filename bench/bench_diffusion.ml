(* Proactive computation diffusion: the C3PO acceptance scenario. A
   single-site flash crowd is aimed at ONE proxy — no redirector help,
   every request lands on nk-a — so the only way to absorb it is to
   shed (the PR 5 baseline) or to move the work (diffusion). The same
   topology and workload run twice, diffusion off and on, and the
   report checks that the enabled run beats the redirect-only baseline
   on both goodput and p99, with offloads spread over at least two
   neighbors. BENCH_diffusion.json records both runs plus the diffusion
   counters (offloads by target, rejects, hash misses, fallbacks).

   CI reruns this under NAKIKA_CHAOS_SEED 1-3; the seed perturbs the
   cluster PRNG (offload target weighting, workload jitter), not the
   workload shape, which stays fixed so the two runs are comparable. *)

module Metrics = Core.Telemetry.Metrics
module Sim = Core.Sim.Sim

let epoch = 1_136_073_600.0

let seed_base =
  match int_of_string_opt (try Sys.getenv "NAKIKA_CHAOS_SEED" with Not_found -> "0") with
  | Some n -> n * 1_000_003
  | None -> 0

let hot_proxy = "nk-a.nakika.net"
let neighbor_names = [ "nk-b.nakika.net"; "nk-c.nakika.net" ]

(* The hot site publishes a script, so what diffuses is a real pipeline
   execution (fuel-metered), not a bare cache lookup — and the
   receivers exercise the hash-resolution path on their first offload. *)
let site_script =
  {|
var p = new Policy();
p.url = ["www.example.edu"];
p.onResponse = function() {
  var b = "", c;
  while ((c = Response.read()) != null) { b += c; }
  Response.write(b.replace("origin", "edge"));
}
p.register();
|}

type outcome = {
  issued : int;
  ok : int;
  rejected : int;
  errors : int;
  p99 : float;
  offload_spread : (string * int) list;  (** per-neighbor offload counts at nk-a *)
  rejects : int;
  fallbacks : int;
}

let goodput o = float_of_int o.ok /. float_of_int (max 1 o.issued)

let run_scenario ~attach ~diffusion () =
  let config =
    if diffusion then
      { Core.Node.Config.default with Core.Node.Config.enable_diffusion = true }
    else Core.Node.Config.default
  in
  let cluster = Core.Node.Cluster.create ~seed:(seed_base + 5) () in
  let origin = Core.Node.Cluster.add_origin cluster ~name:"www.example.edu" () in
  Core.Node.Origin.set_static origin ~path:"/hot.html" ~max_age:60
    "<html>flash crowd at the origin</html>";
  Core.Node.Origin.set_static origin ~path:"/nakika.js" ~content_type:"text/javascript"
    ~max_age:300 site_script;
  let pa = Core.Node.Cluster.add_proxy cluster ~name:hot_proxy ~config () in
  let neighbors =
    List.map (fun name -> Core.Node.Cluster.add_proxy cluster ~name ~config ()) neighbor_names
  in
  let clients =
    [
      Core.Node.Cluster.add_client cluster ~name:"c1";
      Core.Node.Cluster.add_client cluster ~name:"c2";
      Core.Node.Cluster.add_client cluster ~name:"c3";
    ]
  in
  let sim = Core.Node.Cluster.sim cluster in
  let client_arr = Array.of_list clients in
  let issued = ref 0 and ok = ref 0 and rejected = ref 0 and errors = ref 0 in
  let latencies = ref [] in
  (* 600 requests for the hot page inside ~1.2 s, every one pinned to
     nk-a (the client population that a stale DNS answer or a hardcoded
     proxy setting sends to one node), starting after the health plane
     has gossiped at least once. *)
  for i = 0 to 599 do
    Sim.schedule_at sim
      (epoch +. 5.0 +. (0.002 *. float_of_int i))
      (fun () ->
        incr issued;
        let started = Sim.now sim in
        Core.Node.Cluster.fetch cluster
          ~client:client_arr.(!issued mod Array.length client_arr)
          ~proxy:pa ~timeout:10.0
          (Core.Http.Message.request "http://www.example.edu/hot.html")
          (fun resp ->
            match resp.Core.Http.Message.status with
            | 200 ->
              incr ok;
              latencies := (Sim.now sim -. started) :: !latencies
            | 503 -> incr rejected
            | _ -> incr errors))
  done;
  Sim.run ~until:(epoch +. 60.0) sim;
  if attach then begin
    List.iter Harness.attach_node (pa :: neighbors);
    match Harness.registry () with
    | Some m -> Metrics.merge ~into:m (Core.Sim.Net.metrics (Core.Node.Cluster.net cluster))
    | None -> ()
  end;
  let p99 =
    match List.sort compare !latencies with
    | [] -> 0.0
    | sorted ->
      let n = List.length sorted in
      List.nth sorted (min (n - 1) (int_of_float (Float.of_int n *. 0.99)))
  in
  let ma = Core.Node.Node.metrics pa in
  {
    issued = !issued;
    ok = !ok;
    rejected = !rejected;
    errors = !errors;
    p99;
    offload_spread =
      List.map
        (fun name ->
          (name, Metrics.counter ma ~labels:[ ("target", name) ] "diffusion.offloads"))
        neighbor_names;
    rejects =
      List.fold_left
        (fun acc n -> acc + Metrics.counter_total (Core.Node.Node.metrics n) "diffusion.rejects")
        0 neighbors;
    fallbacks = Metrics.counter_total ma "diffusion.fallbacks";
  }

let diffusion () =
  Harness.header "Proactive diffusion (single-site flash crowd, one hot proxy)";
  let baseline = run_scenario ~attach:false ~diffusion:false () in
  let diffused = run_scenario ~attach:true ~diffusion:true () in
  let report label o =
    Printf.printf
      "  %-24s %3d issued  %3d ok  %3d shed  %3d errors  p99 %6.3fs  (%.0f%% goodput)\n"
      label o.issued o.ok o.rejected o.errors o.p99 (100.0 *. goodput o)
  in
  report "redirect-only baseline:" baseline;
  report "diffusion enabled:" diffused;
  let spread = List.filter (fun (_, n) -> n > 0) diffused.offload_spread in
  Printf.printf "  offloads from %s: %s  (rejects %d, local fallbacks %d)\n" hot_proxy
    (String.concat ", "
       (List.map (fun (name, n) -> Printf.sprintf "%s=%d" name n) diffused.offload_spread))
    diffused.rejects diffused.fallbacks;
  Printf.printf "  goodput %.2f -> %.2f %s   p99 %.3fs -> %.3fs %s   spread %d %s\n"
    (goodput baseline) (goodput diffused)
    (if goodput diffused > goodput baseline then "(improved: pass)" else "(NOT IMPROVED)")
    baseline.p99 diffused.p99
    (if diffused.p99 <= baseline.p99 then "(bounded: pass)" else "(WORSE)")
    (List.length spread)
    (if List.length spread >= 2 then "(>= 2 neighbors: pass)" else "(TOO NARROW)");
  match Harness.registry () with
  | None -> ()
  | Some m ->
    Metrics.set_gauge m "diffusion.baseline-goodput" (goodput baseline);
    Metrics.set_gauge m "diffusion.enabled-goodput" (goodput diffused);
    Metrics.set_gauge m "diffusion.baseline-p99" baseline.p99;
    Metrics.set_gauge m "diffusion.enabled-p99" diffused.p99;
    Metrics.set_gauge m "diffusion.offload-spread" (float_of_int (List.length spread));
    Metrics.set_gauge m "diffusion.baseline-sheds" (float_of_int baseline.rejected);
    Metrics.set_gauge m "diffusion.enabled-sheds" (float_of_int diffused.rejected)
