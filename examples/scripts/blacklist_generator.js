var blacklist = fetchResource("http://policy.nakika.net/blacklist.txt");
if (blacklist.status == 200) {
  var entries = blacklist.body.split("\n");
  for (var i = 0; i < entries.length; i++) {
    var entry = entries[i].trim();
    if (entry.length == 0) { continue; }
    var code = "var b = new Policy();" +
               "b.url = [\"" + entry + "\"];" +
               "b.onRequest = function() { Request.terminate(403); };" +
               "b.register();";
    evalScript(code);
  }
}
// Everything else passes.
var pass = new Policy();
pass.onRequest = function() { };
pass.register();
