var p = new Policy();
p.url = ["portal.example.edu"];
p.nextStages = ["http://nakika.net/esi.js"];
p.register();
