var p = new Policy();
p.url = ["notes.medcommunity.org"];
// "The new service simply adjusts the request, including the URL, and
// then schedules the original service after itself" (§3.1).
p.nextStages = ["http://simm.med.nyu.edu/nakika.js"];
p.onRequest = function() {
  // Interpose: rewrite /simm/... to the original SIMM content.
  var marker = "/simm/";
  var at = Request.url.indexOf(marker);
  if (at >= 0) {
    var rest = Request.url.substring(at + marker.length);
    Request.setUrl("http://simm.med.nyu.edu/" + rest);
  }
}
p.onResponse = function() {
  if (Response.contentType == null || Response.contentType.indexOf("text/html") < 0) { return; }
  var body = "", c;
  while ((c = Response.read()) != null) { body += c; }
  // Inject stored post-it notes for this resource before </body>.
  var notes = HardState.get("notes:" + Request.url);
  var widget = "<aside class=\"postit\">" + ((notes == null) ? "no notes yet" : notes) + "</aside>";
  body = body.replace("</body>", widget + "</body>");
  // Keep readers on the annotated site: links point back to us.
  body = body.replace("http://simm.med.nyu.edu/", "http://notes.medcommunity.org/simm/");
  Response.write(body);
}
p.register();

// Accept new annotations posted to /annotate?target=...&text=...
var poster = new Policy();
poster.url = ["notes.medcommunity.org/annotate"];
poster.onRequest = function() {
  var target = Request.query("target");
  var text = Request.query("text");
  var key = "notes:http://simm.med.nyu.edu/" + target;
  var existing = HardState.get(key);
  HardState.put(key, (existing == null) ? text : existing + " | " + text);
  Request.respond(200, "text/plain", "noted");
}
poster.register();
