var p = new Policy();
p.url = ["www.example.edu"];
p.onResponse = function() {
  var body = "", chunk;
  while ((chunk = Response.read()) != null) { body += chunk; }
  Response.write(body.replace("from the origin", "from the edge"));
}
p.register();
