var p = new Policy();
p.url = ["photos.example.org"];
p.headers = { "User-Agent": "Nokia" };
p.onResponse = function() {
  var type = ImageTransformer.type(Response.contentType);
  if (type == null) { return; }

  var cached = Cache.lookup("phone:" + Request.url);
  if (cached != null) {
    Response.setHeader("Content-Type", cached.contentType);
    Response.write(cached.body);
    return;
  }

  var buff = null, body = new ByteArray();
  while ((buff = Response.read()) != null) { body.append(buff); }
  var dim = ImageTransformer.dimensions(body, type);
  if (dim.x > 176 || dim.y > 208) {
    var img;
    if (dim.x / 176 > dim.y / 208) {
      img = ImageTransformer.transform(body, type, "jpeg", 176, dim.y / dim.x * 208);
    } else {
      img = ImageTransformer.transform(body, type, "jpeg", dim.x / dim.y * 176, 208);
    }
    Response.setHeader("Content-Type", "image/jpeg");
    Response.setHeader("Content-Length", img.length);
    Response.write(img);
    Cache.store("phone:" + Request.url, "image/jpeg", img, 300);
  }
}
p.register();
