var p = new Policy();
p.nextStages = ["http://policy.nakika.net/blocker.js"];
p.register();
