(* The nk_telemetry subsystem: metrics registry (counters, gauges,
   log-bucketed histograms with their quantile-accuracy and merge
   guarantees), span tracing, structured events, profiling, and the
   end-to-end wiring through a simulated node. *)

open Core.Telemetry

(* --- histogram properties --------------------------------------------- *)

(* The quantile estimate returns the containing bucket's upper bound
   (clamped to the observed max), and buckets grow geometrically by
   [Histogram.growth]: the estimate stays within one bucket's relative
   error of the exact nearest-rank percentile. The lower side also gets
   a growth factor of slack for samples that sit exactly on a bucket
   boundary (log rounding may place them either side). *)
let quantile_close ~exact ~estimate =
  let g = Metrics.Histogram.growth in
  estimate >= exact /. g *. (1.0 -. 1e-9) && estimate <= exact *. g *. (1.0 +. 1e-9)

let positive_samples = QCheck.(list_of_size Gen.(int_range 1 300) (float_range 1e-6 1e6))

let quantiles_match_stats_prop =
  QCheck.Test.make ~name:"histogram quantiles track Stats percentiles" ~count:200
    positive_samples (fun samples ->
      let h = Metrics.Histogram.create () in
      let stats = Core.Util.Stats.create () in
      List.iter
        (fun x ->
          Metrics.Histogram.observe h x;
          Core.Util.Stats.add stats x)
        samples;
      List.for_all
        (fun p ->
          quantile_close
            ~exact:(Core.Util.Stats.percentile stats p)
            ~estimate:(Metrics.Histogram.quantile h p))
        [ 1.0; 25.0; 50.0; 90.0; 99.0; 100.0 ])

let merge_equals_concat_prop =
  QCheck.Test.make ~name:"merged histograms = histogram of concatenated samples"
    ~count:200
    QCheck.(pair positive_samples positive_samples)
    (fun (xs, ys) ->
      let observe_all samples =
        let h = Metrics.Histogram.create () in
        List.iter (Metrics.Histogram.observe h) samples;
        h
      in
      let merged = Metrics.Histogram.merge (observe_all xs) (observe_all ys) in
      let concat = observe_all (xs @ ys) in
      Metrics.Histogram.count merged = Metrics.Histogram.count concat
      && Metrics.Histogram.buckets merged = Metrics.Histogram.buckets concat
      && Metrics.Histogram.min_value merged = Metrics.Histogram.min_value concat
      && Metrics.Histogram.max_value merged = Metrics.Histogram.max_value concat
      && Float.abs (Metrics.Histogram.sum merged -. Metrics.Histogram.sum concat)
         <= 1e-6 *. Float.max 1.0 (Float.abs (Metrics.Histogram.sum concat)))

(* --- registry units ---------------------------------------------------- *)

let test_counters_and_labels () =
  let m = Metrics.create () in
  Metrics.incr m "hits";
  Metrics.incr m ~by:2 "hits";
  Metrics.incr m ~labels:[ ("site", "a.org") ] "hits";
  Metrics.incr m ~labels:[ ("site", "b.org"); ("kind", "x") ] "hits";
  (* Label order must not matter. *)
  Metrics.incr m ~labels:[ ("kind", "x"); ("site", "b.org") ] "hits";
  Alcotest.(check int) "unlabeled" 3 (Metrics.counter m "hits");
  Alcotest.(check int) "labeled" 1 (Metrics.counter m ~labels:[ ("site", "a.org") ] "hits");
  Alcotest.(check int) "normalized labels" 2
    (Metrics.counter m ~labels:[ ("site", "b.org"); ("kind", "x") ] "hits");
  Alcotest.(check int) "total over label sets" 6 (Metrics.counter_total m "hits");
  Alcotest.(check int) "absent counter" 0 (Metrics.counter m "nope");
  Alcotest.(check (list string)) "names" [ "hits" ] (Metrics.counter_names m)

let test_gauges () =
  let m = Metrics.create () in
  Metrics.set_gauge m "bytes" 10.0;
  Metrics.set_gauge m "bytes" 42.0;
  Alcotest.(check (float 0.0)) "latest wins" 42.0 (Metrics.gauge m "bytes");
  Alcotest.(check (float 0.0)) "absent gauge" 0.0 (Metrics.gauge m "nope")

let test_registry_merge () =
  let a = Metrics.create () in
  let b = Metrics.create () in
  Metrics.incr a ~by:3 "reqs";
  Metrics.incr b ~by:4 "reqs";
  Metrics.set_gauge b "entries" 7.0;
  Metrics.observe a "lat" 1.0;
  Metrics.observe b "lat" 2.0;
  Metrics.merge ~into:a b;
  Alcotest.(check int) "counters add" 7 (Metrics.counter a "reqs");
  Alcotest.(check (float 0.0)) "gauges take source" 7.0 (Metrics.gauge a "entries");
  match Metrics.histogram a "lat" with
  | None -> Alcotest.fail "merged histogram missing"
  | Some h -> Alcotest.(check int) "histogram counts add" 2 (Metrics.Histogram.count h)

let test_exporters_smoke () =
  let m = Metrics.create () in
  Metrics.incr m ~labels:[ ("site", "a.org") ] "site.requests";
  Metrics.set_gauge m "cache.bytes" 123.0;
  Metrics.observe m "latency" 0.25;
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  let table = Metrics.to_table m in
  Alcotest.(check bool) "table has labeled counter" true
    (contains table {|site.requests{site="a.org"}|});
  let prom = Metrics.to_prometheus m in
  Alcotest.(check bool) "prometheus types" true (contains prom "# TYPE latency histogram");
  Alcotest.(check bool) "prometheus sanitizes names" true
    (contains prom "cache_bytes 123");
  let lines = Metrics.to_json_lines m in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains lines needle))
    [
      {|"type":"counter"|};
      {|"type":"gauge"|};
      {|"type":"histogram"|};
      {|"labels":{"site":"a.org"}|};
    ];
  Alcotest.(check string) "json escaping" {|a\"b\\c|} (Metrics.json_escape {|a"b\c|})

(* --- tracer ------------------------------------------------------------ *)

let test_tracer_span_tree () =
  let now = ref 0.0 in
  let tracer = Tracer.create ~clock:(fun () -> !now) () in
  let root = Tracer.start_trace tracer ~attrs:[ ("url", "http://x/") ] "request" in
  now := 0.010;
  let child = Tracer.start_span tracer ~parent:root "cache-lookup" in
  Tracer.set_attr child "hit" "false";
  now := 0.015;
  Tracer.finish tracer child;
  Alcotest.(check (option (float 1e-9))) "child duration" (Some 0.005)
    (Tracer.duration child);
  now := 0.040;
  Tracer.finish tracer root;
  Alcotest.(check int) "one trace completed" 1 (Tracer.completed tracer);
  match Tracer.traces tracer with
  | [ tr ] ->
    Alcotest.(check int) "both spans retained" 2 (List.length tr.Tracer.spans);
    let rendered = Tracer.render tr in
    List.iter
      (fun needle ->
        Alcotest.(check bool) needle true
          (let lh = String.length rendered and ln = String.length needle in
           let rec go i = i + ln <= lh && (String.sub rendered i ln = needle || go (i + 1)) in
           go 0))
      [ "request"; "cache-lookup"; "hit=false"; "url=http://x/" ]
  | traces -> Alcotest.fail (Printf.sprintf "expected 1 trace, got %d" (List.length traces))

let test_tracer_ring_and_slowest () =
  let now = ref 0.0 in
  let tracer = Tracer.create ~capacity:2 ~clock:(fun () -> !now) () in
  List.iter
    (fun d ->
      let root = Tracer.start_trace tracer (Printf.sprintf "r%.0f" (d *. 1000.0)) in
      now := !now +. d;
      Tracer.finish tracer root)
    [ 0.030; 0.010; 0.020 ];
  Alcotest.(check int) "completed counts past capacity" 3 (Tracer.completed tracer);
  Alcotest.(check int) "ring keeps capacity" 2 (List.length (Tracer.traces tracer));
  (* The 30 ms trace was overwritten; slowest of the retained two is 20 ms. *)
  match Tracer.slowest tracer 5 with
  | first :: _ ->
    Alcotest.(check string) "slowest retained trace" "r20" first.Tracer.root.Tracer.name
  | [] -> Alcotest.fail "no traces retained"

(* --- events and profile ------------------------------------------------ *)

let test_events_ring () =
  let now = ref 1.0 in
  let events = Events.create ~capacity:2 ~clock:(fun () -> !now) () in
  Events.record events ~attrs:[ ("site", "a.org") ] "throttle";
  now := 2.0;
  Events.record events "terminate";
  now := 3.0;
  Events.record events "throttle";
  Alcotest.(check int) "count is total" 3 (Events.count events);
  match Events.to_list events with
  | [ e1; e2 ] ->
    Alcotest.(check string) "oldest retained" "terminate" e1.Events.name;
    Alcotest.(check (float 0.0)) "clocked" 3.0 e2.Events.time
  | l -> Alcotest.fail (Printf.sprintf "expected 2 events, got %d" (List.length l))

let test_profile_accumulates () =
  let now = ref 0.0 in
  let p = Profile.create ~clock:(fun () -> !now) () in
  let tick d = now := !now +. d in
  ignore (Profile.time p "parse" (fun () -> tick 0.5; 1));
  ignore (Profile.time p "parse" (fun () -> tick 0.25; 2));
  ignore (Profile.time p "exec" (fun () -> tick 0.1; 3));
  (try Profile.time p "exec" (fun () -> tick 0.4; failwith "boom") with Failure _ -> 0)
  |> ignore;
  match Profile.report p with
  | [ a; b ] ->
    Alcotest.(check string) "largest first" "parse" a.Profile.region;
    Alcotest.(check int) "calls" 2 a.Profile.calls;
    Alcotest.(check (float 1e-9)) "total" 0.75 a.Profile.total;
    Alcotest.(check (float 1e-9)) "max" 0.5 a.Profile.max;
    Alcotest.(check (float 1e-9)) "exception still charged" 0.5 b.Profile.total
  | l -> Alcotest.fail (Printf.sprintf "expected 2 regions, got %d" (List.length l))

(* --- end-to-end: a node's registry and traces -------------------------- *)

let test_node_wiring () =
  let open Core.Node in
  let cluster = Cluster.create () in
  let origin = Cluster.add_origin cluster ~name:"www.example.edu" () in
  Origin.set_static origin ~path:"/index.html" ~max_age:300 "<html>hello</html>";
  let proxy = Cluster.add_proxy cluster ~name:"nk1.nakika.net" () in
  let client = Cluster.add_client cluster ~name:"c1" in
  let get () =
    Cluster.fetch cluster ~client ~proxy
      (Core.Http.Message.request "http://www.example.edu/index.html")
      (fun _ -> ());
    Cluster.run cluster
  in
  get ();
  get ();
  let m = Node.metrics proxy in
  Alcotest.(check int) "requests counted" 2 (Metrics.counter m "requests");
  Alcotest.(check int) "per-site label" 2
    (Metrics.counter m ~labels:[ ("site", "www.example.edu") ] "site.requests");
  Alcotest.(check bool) "cache hit metered" true (Metrics.counter m "cache.hits" >= 1);
  (* The facade keeps the exact samples and the registry histogram in
     lockstep. *)
  (match Metrics.histogram m "latency" with
   | None -> Alcotest.fail "latency histogram missing"
   | Some h ->
     Alcotest.(check int) "latency observations" 2 (Metrics.Histogram.count h));
  let tracer = Node.tracer proxy in
  Alcotest.(check int) "one trace per request" 2 (Tracer.completed tracer);
  (match Tracer.slowest tracer 1 with
   | [ tr ] ->
     let span_names = List.map (fun s -> s.Tracer.name) tr.Tracer.spans in
     List.iter
       (fun expected ->
         Alcotest.(check bool) expected true (List.mem expected span_names))
       [ "request"; "cache-lookup"; "policy-match"; "origin-fetch" ];
     (* Child spans nest inside the root: their simulated time is
        accounted within the request's duration. *)
     (match Tracer.duration tr.Tracer.root with
      | None -> Alcotest.fail "root not finished"
      | Some root_d ->
        List.iter
          (fun s ->
            match Tracer.duration s with
            | Some d -> Alcotest.(check bool) "child within root" true (d <= root_d +. 1e-9)
            | None -> Alcotest.fail "unfinished child span")
          tr.Tracer.spans)
   | _ -> Alcotest.fail "no slowest trace");
  (* Disabling tracing stops trace collection but not metrics. *)
  let cluster2 = Cluster.create () in
  let origin2 = Cluster.add_origin cluster2 ~name:"www.example.edu" () in
  Origin.set_static origin2 ~path:"/index.html" ~max_age:300 "x";
  let quiet =
    Cluster.add_proxy cluster2 ~name:"nk2.nakika.net"
      ~config:{ Config.default with Config.enable_tracing = false }
      ()
  in
  let client2 = Cluster.add_client cluster2 ~name:"c2" in
  Cluster.fetch cluster2 ~client:client2 ~proxy:quiet
    (Core.Http.Message.request "http://www.example.edu/index.html")
    (fun _ -> ());
  Cluster.run cluster2;
  Alcotest.(check int) "no traces when disabled" 0 (Tracer.completed (Node.tracer quiet));
  Alcotest.(check int) "metrics still flow" 1 (Metrics.counter (Node.metrics quiet) "requests")

let suite =
  [
    Alcotest.test_case "counters and labels" `Quick test_counters_and_labels;
    Alcotest.test_case "gauges" `Quick test_gauges;
    Alcotest.test_case "registry merge" `Quick test_registry_merge;
    Alcotest.test_case "exporters" `Quick test_exporters_smoke;
    Alcotest.test_case "tracer: span tree" `Quick test_tracer_span_tree;
    Alcotest.test_case "tracer: ring buffer and slowest" `Quick test_tracer_ring_and_slowest;
    Alcotest.test_case "events ring" `Quick test_events_ring;
    Alcotest.test_case "profile accumulates" `Quick test_profile_accumulates;
    Alcotest.test_case "node wiring end-to-end" `Quick test_node_wiring;
    QCheck_alcotest.to_alcotest quantiles_match_stats_prop;
    QCheck_alcotest.to_alcotest merge_equals_concat_prop;
  ]
