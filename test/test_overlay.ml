(* The structured overlay: ring membership and routing, TTL'd DHT
   storage, DNS redirection. *)

open Core.Overlay

let test_node_id_deterministic () =
  Alcotest.(check bool) "same name same id" true
    (Node_id.equal (Node_id.of_string "node-a") (Node_id.of_string "node-a"));
  Alcotest.(check bool) "names differ" false
    (Node_id.equal (Node_id.of_string "node-a") (Node_id.of_string "node-b"))

let test_node_id_distance () =
  let a = Node_id.of_int 10 and b = Node_id.of_int 20 in
  Alcotest.(check int) "forward" 10 (Node_id.distance a b);
  Alcotest.(check bool) "wraps" true (Node_id.distance b a > 0);
  Alcotest.(check int) "self" 0 (Node_id.distance a a)

let test_node_id_interval () =
  let a = Node_id.of_int 10 and b = Node_id.of_int 20 in
  Alcotest.(check bool) "inside" true (Node_id.in_interval (Node_id.of_int 15) ~left:a ~right:b);
  Alcotest.(check bool) "right closed" true (Node_id.in_interval b ~left:a ~right:b);
  Alcotest.(check bool) "left open" false (Node_id.in_interval a ~left:a ~right:b);
  Alcotest.(check bool) "outside" false (Node_id.in_interval (Node_id.of_int 25) ~left:a ~right:b)

let test_ring_membership () =
  let r = Ring.create () in
  let a = Node_id.of_int 100 in
  Ring.join r a;
  Ring.join r a;
  Alcotest.(check int) "idempotent join" 1 (Ring.size r);
  Ring.leave r a;
  Alcotest.(check int) "left" 0 (Ring.size r)

let test_ring_successor () =
  let r = Ring.create () in
  List.iter (fun i -> Ring.join r (Node_id.of_int i)) [ 10; 20; 30 ];
  let successor k = Node_id.to_int (Option.get (Ring.successor r (Node_id.of_int k))) in
  Alcotest.(check int) "between" 20 (successor 15);
  Alcotest.(check int) "exact" 20 (successor 20);
  Alcotest.(check int) "wraparound" 10 (successor 31);
  Alcotest.(check bool) "empty ring" true (Ring.successor (Ring.create ()) (Node_id.of_int 1) = None)

let test_ring_lookup_path_terminates () =
  let r = Ring.create () in
  for i = 1 to 50 do
    Ring.join r (Node_id.of_string (Printf.sprintf "node%d" i))
  done;
  let from = Node_id.of_string "node1" in
  for i = 1 to 100 do
    let key = Node_id.of_string (Printf.sprintf "key%d" i) in
    let path = Ring.lookup_path r ~from ~key in
    Alcotest.(check bool) "bounded path" true (List.length path <= 60);
    match Ring.successor r key with
    | Some owner when path <> [] ->
      Alcotest.(check bool) "ends at owner" true
        (Node_id.equal owner (List.nth path (List.length path - 1)))
    | _ -> ()
  done

let test_ring_lookup_log_hops () =
  let r = Ring.create () in
  for i = 1 to 128 do
    Ring.join r (Node_id.of_string (Printf.sprintf "n%d" i))
  done;
  let from = Node_id.of_string "n1" in
  let total = ref 0 in
  for i = 1 to 200 do
    total := !total + List.length (Ring.lookup_path r ~from ~key:(Node_id.of_string (Printf.sprintf "k%d" i)))
  done;
  let avg = float_of_int !total /. 200.0 in
  (* log2(128) = 7; greedy finger routing should stay well under 2x. *)
  Alcotest.(check bool) (Printf.sprintf "avg hops %.1f <= 14" avg) true (avg <= 14.0)

let test_dht_put_get () =
  let dht = Dht.create () in
  ignore (Dht.join dht "alpha");
  ignore (Dht.join dht "beta");
  ignore (Dht.put dht ~now:0.0 ~from:"alpha" ~key:"GET http://x.org/p" ~value:"alpha" ~ttl:60.0);
  let r = Dht.get dht ~now:1.0 ~from:"beta" ~key:"GET http://x.org/p" in
  Alcotest.(check (list string)) "found" [ "alpha" ] r.Dht.values

let test_dht_ttl_expiry () =
  let dht = Dht.create () in
  ignore (Dht.join dht "alpha");
  ignore (Dht.put dht ~now:0.0 ~from:"alpha" ~key:"k" ~value:"v" ~ttl:10.0);
  Alcotest.(check (list string)) "live" [ "v" ] (Dht.get dht ~now:9.0 ~from:"alpha" ~key:"k").Dht.values;
  Alcotest.(check (list string)) "expired" [] (Dht.get dht ~now:10.5 ~from:"alpha" ~key:"k").Dht.values

let test_dht_multiple_values () =
  let dht = Dht.create () in
  List.iter (fun n -> ignore (Dht.join dht n)) [ "a"; "b"; "c" ];
  ignore (Dht.put dht ~now:0.0 ~from:"a" ~key:"k" ~value:"a" ~ttl:60.0);
  ignore (Dht.put dht ~now:1.0 ~from:"b" ~key:"k" ~value:"b" ~ttl:60.0);
  let values = (Dht.get dht ~now:2.0 ~from:"c" ~key:"k").Dht.values in
  Alcotest.(check (list string)) "newest first, both live" [ "b"; "a" ] values

let test_dht_reannounce_dedupes () =
  let dht = Dht.create () in
  ignore (Dht.join dht "a");
  ignore (Dht.put dht ~now:0.0 ~from:"a" ~key:"k" ~value:"a" ~ttl:5.0);
  ignore (Dht.put dht ~now:3.0 ~from:"a" ~key:"k" ~value:"a" ~ttl:5.0);
  let values = (Dht.get dht ~now:6.0 ~from:"a" ~key:"k").Dht.values in
  Alcotest.(check (list string)) "single refreshed entry" [ "a" ] values

let test_dht_value_cap () =
  let dht = Dht.create ~values_per_key:3 () in
  ignore (Dht.join dht "n");
  for i = 1 to 10 do
    ignore (Dht.put dht ~now:0.0 ~from:"n" ~key:"k" ~value:(string_of_int i) ~ttl:60.0)
  done;
  let values = (Dht.get dht ~now:1.0 ~from:"n" ~key:"k").Dht.values in
  Alcotest.(check (list string)) "newest three" [ "10"; "9"; "8" ] values

let test_dht_leave_drops_state () =
  let dht = Dht.create () in
  ignore (Dht.join dht "solo");
  ignore (Dht.put dht ~now:0.0 ~from:"solo" ~key:"k" ~value:"v" ~ttl:60.0);
  Alcotest.(check int) "stored" 1 (Dht.stored_keys dht "solo");
  Dht.leave dht "solo";
  Alcotest.(check int) "gone" 0 (Dht.stored_keys dht "solo")

let test_dht_unjoined_put_raises () =
  let dht = Dht.create () in
  match Dht.put dht ~now:0.0 ~from:"ghost" ~key:"k" ~value:"v" ~ttl:1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_dht_lookup_under_churn () =
  (* Announcements live on the owner plus a successor replica; with any
     single node crashed (per the liveness oracle), every key is still
     readable via fallback, and the skips are counted. *)
  let dht = Dht.create () in
  let names = [ "alpha"; "beta"; "gamma"; "delta" ] in
  List.iter (fun n -> ignore (Dht.join dht n)) names;
  let keys = List.init 12 (fun i -> Printf.sprintf "GET http://site%d.org/obj" i) in
  List.iter
    (fun k -> ignore (Dht.put dht ~now:0.0 ~from:"alpha" ~key:k ~value:"holder" ~ttl:600.0))
    keys;
  let down = ref None in
  Dht.set_liveness dht (fun n -> !down <> Some n);
  let total_fallbacks = ref 0 in
  List.iter
    (fun crashed ->
      down := Some crashed;
      let from = List.find (fun n -> n <> crashed) names in
      List.iter
        (fun k ->
          let l = Dht.get dht ~now:1.0 ~from ~key:k in
          total_fallbacks := !total_fallbacks + l.Dht.fallbacks;
          Alcotest.(check (list string))
            (Printf.sprintf "%s readable with %s down" k crashed)
            [ "holder" ] l.Dht.values)
        keys)
    names;
  (* With 4 nodes and 12 keys, some owner was down at some point. *)
  Alcotest.(check bool) "fallbacks actually exercised" true (!total_fallbacks > 0);
  Alcotest.(check bool) "fallbacks metered" true
    (Core.Telemetry.Metrics.counter (Dht.metrics dht) "dht.fallbacks" > 0)

let dht_soft_state_prop =
  QCheck.Test.make ~name:"dht: any joined node can read back any announcement" ~count:100
    QCheck.(pair (int_range 2 12) (small_list (string_of_size (QCheck.Gen.int_range 1 20))))
    (fun (n_nodes, keys) ->
      let dht = Dht.create () in
      let names = List.init n_nodes (fun i -> Printf.sprintf "node%d" i) in
      List.iter (fun n -> ignore (Dht.join dht n)) names;
      List.for_all
        (fun key ->
          ignore (Dht.put dht ~now:0.0 ~from:(List.hd names) ~key ~value:"owner" ~ttl:60.0);
          List.for_all
            (fun reader -> (Dht.get dht ~now:1.0 ~from:reader ~key).Dht.values = [ "owner" ])
            names)
        keys)


let test_dht_survives_churn () =
  (* Soft state + re-announcement keep content findable across churn:
     after nodes join and leave, re-announced keys resolve again. *)
  let dht = Dht.create () in
  List.iter (fun n -> ignore (Dht.join dht n)) [ "a"; "b"; "c"; "d" ];
  ignore (Dht.put dht ~now:0.0 ~from:"a" ~key:"obj" ~value:"a" ~ttl:60.0);
  (* Churn: a new node may take over the key's region, an old one may
     leave with its stored state. *)
  ignore (Dht.join dht "e");
  Dht.leave dht "b";
  (* The announcement may have been lost with the owner; soft state is
     repaired by the owner re-announcing (as caches do periodically). *)
  ignore (Dht.put dht ~now:1.0 ~from:"a" ~key:"obj" ~value:"a" ~ttl:60.0);
  List.iter
    (fun reader ->
      Alcotest.(check (list string)) (reader ^ " finds it") [ "a" ]
        (Dht.get dht ~now:2.0 ~from:reader ~key:"obj").Dht.values)
    [ "a"; "c"; "d"; "e" ]

let test_ring_lookup_consistent_across_nodes () =
  (* Every node routing to the same key reaches the same owner. *)
  let r = Ring.create () in
  let names = List.init 20 (fun i -> Printf.sprintf "n%d" i) in
  List.iter (fun n -> Ring.join r (Node_id.of_string n)) names;
  let key = Node_id.of_string "some-object" in
  let owner = Option.get (Ring.successor r key) in
  List.iter
    (fun n ->
      let from = Node_id.of_string n in
      let path = Ring.lookup_path r ~from ~key in
      let arrived = match List.rev path with last :: _ -> last | [] -> from in
      Alcotest.(check bool) (n ^ " reaches owner") true (Node_id.equal arrived owner))
    names

let test_redirector_nearest () =
  let sim = Core.Sim.Sim.create () in
  let net = Core.Sim.Net.create sim () in
  let near = Core.Sim.Net.add_host net ~name:"near" () in
  let far = Core.Sim.Net.add_host net ~name:"far" () in
  let client = Core.Sim.Net.add_host net ~name:"client" () in
  Core.Sim.Net.connect net client near ~latency:0.005 ~bandwidth:1e7;
  Core.Sim.Net.connect net client far ~latency:0.2 ~bandwidth:1e7;
  let red = Redirector.create net in
  Redirector.add_proxy red near;
  Redirector.add_proxy red far;
  let rng = Core.Util.Prng.create 1 in
  for _ = 1 to 10 do
    match Redirector.pick red ~rng ~client () with
    | Some h -> Alcotest.(check string) "nearest" "near" (Core.Sim.Net.host_name h)
    | None -> Alcotest.fail "no proxy"
  done

let test_redirector_spread () =
  let sim = Core.Sim.Sim.create () in
  let net = Core.Sim.Net.create sim () in
  let red = Redirector.create net in
  let hosts = List.init 4 (fun i -> Core.Sim.Net.add_host net ~name:(Printf.sprintf "p%d" i) ()) in
  List.iter (Redirector.add_proxy red) hosts;
  let client = Core.Sim.Net.add_host net ~name:"c" () in
  let rng = Core.Util.Prng.create 5 in
  let seen = Hashtbl.create 4 in
  for _ = 1 to 60 do
    match Redirector.pick red ~spread:4 ~rng ~client () with
    | Some h -> Hashtbl.replace seen (Core.Sim.Net.host_name h) ()
    | None -> ()
  done;
  Alcotest.(check bool) "load spreads over several proxies" true (Hashtbl.length seen >= 2)

let test_redirector_empty () =
  let sim = Core.Sim.Sim.create () in
  let net = Core.Sim.Net.create sim () in
  let red = Redirector.create net in
  let client = Core.Sim.Net.add_host net ~name:"c" () in
  Alcotest.(check bool) "none" true
    (Redirector.pick red ~rng:(Core.Util.Prng.create 1) ~client () = None)

let test_redirector_remove () =
  let sim = Core.Sim.Sim.create () in
  let net = Core.Sim.Net.create sim () in
  let red = Redirector.create net in
  let p = Core.Sim.Net.add_host net ~name:"p" () in
  Redirector.add_proxy red p;
  Redirector.remove_proxy red p;
  Alcotest.(check (list string)) "empty" []
    (List.map Core.Sim.Net.host_name (Redirector.proxies red))

let test_redirector_spread_clamped () =
  (* A spread wider than the registered pool clamps instead of raising. *)
  let sim = Core.Sim.Sim.create () in
  let net = Core.Sim.Net.create sim () in
  let red = Redirector.create net in
  let p0 = Core.Sim.Net.add_host net ~name:"p0" () in
  let p1 = Core.Sim.Net.add_host net ~name:"p1" () in
  Redirector.add_proxy red p0;
  Redirector.add_proxy red p1;
  let client = Core.Sim.Net.add_host net ~name:"c" () in
  let rng = Core.Util.Prng.create 7 in
  for _ = 1 to 20 do
    match Redirector.pick red ~spread:10 ~rng ~client () with
    | Some h ->
      let n = Core.Sim.Net.host_name h in
      Alcotest.(check bool) "a registered proxy" true (n = "p0" || n = "p1")
    | None -> Alcotest.fail "must pick from a non-empty pool"
  done

let test_redirector_skips_crashed () =
  let sim = Core.Sim.Sim.create () in
  let net = Core.Sim.Net.create sim () in
  let t0 = Core.Sim.Sim.now sim in
  let plan = Core.Faults.Plan.create () in
  Core.Faults.Plan.crash plan ~host:"down" ~at:t0 ();
  Core.Sim.Net.set_faults net plan;
  let up = Core.Sim.Net.add_host net ~name:"up" () in
  let down = Core.Sim.Net.add_host net ~name:"down" () in
  let client = Core.Sim.Net.add_host net ~name:"c" () in
  (* The crashed node is nearer — it must still never be returned. *)
  Core.Sim.Net.connect net client down ~latency:0.005 ~bandwidth:1e7;
  Core.Sim.Net.connect net client up ~latency:0.2 ~bandwidth:1e7;
  let red = Redirector.create net in
  Redirector.add_proxy red down;
  Redirector.add_proxy red up;
  let rng = Core.Util.Prng.create 3 in
  for _ = 1 to 20 do
    match Redirector.pick red ~spread:2 ~rng ~client () with
    | Some h -> Alcotest.(check string) "live proxy only" "up" (Core.Sim.Net.host_name h)
    | None -> Alcotest.fail "a live proxy exists"
  done

let test_redirector_health_weighting () =
  (* Two equidistant proxies, one reporting saturation: the healthy one
     absorbs the bulk of the redirections. *)
  let sim = Core.Sim.Sim.create () in
  let net = Core.Sim.Net.create sim () in
  let red = Redirector.create net in
  let idle = Core.Sim.Net.add_host net ~name:"idle" () in
  let busy = Core.Sim.Net.add_host net ~name:"busy" () in
  let client = Core.Sim.Net.add_host net ~name:"c" () in
  Core.Sim.Net.connect net client idle ~latency:0.01 ~bandwidth:1e7;
  Core.Sim.Net.connect net client busy ~latency:0.01 ~bandwidth:1e7;
  Redirector.add_proxy red idle;
  Redirector.add_proxy red busy;
  Redirector.report red ~host:"idle" ~queue_delay:0.0 ~shed_rate:0.0 ();
  Redirector.report red ~host:"busy" ~queue_delay:5.0 ~shed_rate:0.9 ();
  let rng = Core.Util.Prng.create 11 in
  let busy_picks = ref 0 in
  let draws = 400 in
  for _ = 1 to draws do
    match Redirector.pick red ~spread:2 ~rng ~client () with
    | Some h -> if Core.Sim.Net.host_name h = "busy" then incr busy_picks
    | None -> Alcotest.fail "pool is non-empty"
  done;
  Alcotest.(check bool)
    (Printf.sprintf "saturated node got %d/%d picks (< 20%%)" !busy_picks draws)
    true
    (float_of_int !busy_picks < 0.2 *. float_of_int draws)

let test_redirector_incarnation_guard () =
  (* A report from a node's dead incarnation (sent before a crash the
     redirector already heard about) must not overwrite newer state. *)
  let sim = Core.Sim.Sim.create () in
  let net = Core.Sim.Net.create sim () in
  let red = Redirector.create net in
  let p = Core.Sim.Net.add_host net ~name:"p" () in
  Redirector.add_proxy red p;
  Redirector.report red ~host:"p" ~incarnation:1 ~queue_delay:0.1 ~shed_rate:0.2 ();
  Redirector.report red ~host:"p" ~incarnation:0 ~queue_delay:9.9 ~shed_rate:0.9 ();
  (match Redirector.health red ~host:"p" with
   | Some h ->
     Alcotest.(check (float 1e-9)) "stale delay ignored" 0.1 h.Redirector.queue_delay;
     Alcotest.(check (float 1e-9)) "stale rate ignored" 0.2 h.Redirector.shed_rate;
     Alcotest.(check int) "incarnation kept" 1 h.Redirector.incarnation
   | None -> Alcotest.fail "report stored");
  (* Same-incarnation reports refresh freely. *)
  Redirector.report red ~host:"p" ~incarnation:1 ~queue_delay:0.5 ~shed_rate:0.0 ();
  match Redirector.health red ~host:"p" with
  | Some h -> Alcotest.(check (float 1e-9)) "refreshed" 0.5 h.Redirector.queue_delay
  | None -> Alcotest.fail "report stored"

let test_redirector_staleness_bound () =
  (* A node that stops reporting must stop attracting traffic once its
     last report ages past the staleness bound — it gets the recovery
     trickle, not the unknown-node benefit of the doubt. *)
  let sim = Core.Sim.Sim.create () in
  let net = Core.Sim.Net.create sim () in
  let red = Redirector.create net in
  Redirector.set_staleness red 3.0;
  let silent = Core.Sim.Net.add_host net ~name:"silent" () in
  let fresh = Core.Sim.Net.add_host net ~name:"fresh" () in
  let client = Core.Sim.Net.add_host net ~name:"c" () in
  Core.Sim.Net.connect net client silent ~latency:0.01 ~bandwidth:1e7;
  Core.Sim.Net.connect net client fresh ~latency:0.01 ~bandwidth:1e7;
  Redirector.add_proxy red silent;
  Redirector.add_proxy red fresh;
  (* Both report idle at t=0; only [fresh] keeps reporting. *)
  Redirector.report red ~host:"silent" ~queue_delay:0.0 ~shed_rate:0.0 ();
  Redirector.report red ~host:"fresh" ~queue_delay:0.0 ~shed_rate:0.0 ();
  Core.Sim.Sim.schedule sim ~delay:10.0 (fun () ->
      Redirector.report red ~host:"fresh" ~queue_delay:0.0 ~shed_rate:0.0 ());
  Core.Sim.Sim.run sim;
  let rng = Core.Util.Prng.create 13 in
  let silent_picks = ref 0 in
  let draws = 400 in
  for _ = 1 to draws do
    match Redirector.pick red ~spread:2 ~rng ~client () with
    | Some h -> if Core.Sim.Net.host_name h = "silent" then incr silent_picks
    | None -> Alcotest.fail "pool is non-empty"
  done;
  Alcotest.(check bool)
    (Printf.sprintf "silent node got %d/%d picks (< 10%%)" !silent_picks draws)
    true
    (float_of_int !silent_picks < 0.1 *. float_of_int draws);
  (* A fresh report brings it straight back into rotation. *)
  Redirector.report red ~host:"silent" ~queue_delay:0.0 ~shed_rate:0.0 ();
  let silent_after = ref 0 in
  for _ = 1 to draws do
    match Redirector.pick red ~spread:2 ~rng ~client () with
    | Some h -> if Core.Sim.Net.host_name h = "silent" then incr silent_after
    | None -> Alcotest.fail "pool is non-empty"
  done;
  Alcotest.(check bool)
    (Printf.sprintf "recovered node got %d/%d picks (> 30%%)" !silent_after draws)
    true
    (float_of_int !silent_after > 0.3 *. float_of_int draws)

(* {1 Ring scaling properties}

   The membership structure went from a re-sorted array to an ordered
   set; these pin the new implementation against a naive reference
   model at memberships up to 2048 nodes. *)

(* Reference model: a plain sorted list. Successor = first element >=
   key, wrapping to the minimum. *)
let ref_successor sorted key =
  match List.find_opt (fun x -> Node_id.compare x key >= 0) sorted with
  | Some _ as s -> s
  | None -> ( match sorted with [] -> None | x :: _ -> Some x)

let ring_of_names n =
  let r = Ring.create () in
  let ids = List.init n (fun i -> Node_id.of_string (Printf.sprintf "scale-node-%d" i)) in
  List.iter (Ring.join r) ids;
  (r, ids)

let ring_successor_matches_reference_prop =
  QCheck.Test.make ~name:"ring: successor agrees with the naive model up to 2048 nodes"
    ~count:30
    QCheck.(pair (int_range 1 2048) (small_list small_int))
    (fun (n, probe_seeds) ->
      let r, ids = ring_of_names n in
      let sorted = List.sort_uniq Node_id.compare ids in
      Alcotest.(check int) "size" (List.length sorted) (Ring.size r);
      let probes =
        Node_id.of_int 0
        :: List.concat_map
             (fun s ->
               [ Node_id.of_string (Printf.sprintf "probe-%d" s);
                 (* On-member probes: successor(member) = member. *)
                 List.nth sorted (abs s mod List.length sorted) ])
             probe_seeds
      in
      List.for_all
        (fun key ->
          match (Ring.successor r key, ref_successor sorted key) with
          | Some a, Some b -> Node_id.equal a b
          | None, None -> true
          | _ -> false)
        probes)

let ring_lookup_path_scales_prop =
  QCheck.Test.make ~name:"ring: greedy paths stay O(log n) up to 2048 nodes" ~count:8
    QCheck.(int_range 16 2048)
    (fun n ->
      let r, ids = ring_of_names n in
      let arr = Array.of_list ids in
      let rng = Core.Util.Prng.create (n * 7 + 1) in
      let total = ref 0 and probes = 50 in
      for i = 0 to probes - 1 do
        let from = Core.Util.Prng.pick rng arr in
        let key = Node_id.of_string (Printf.sprintf "path-key-%d-%d" n i) in
        let path = Ring.lookup_path r ~from ~key in
        total := !total + List.length path;
        (* Every path ends at the key's owner. *)
        (match (Ring.successor r key, List.rev path) with
         | Some owner, last :: _ -> assert (Node_id.equal owner last)
         | Some owner, [] -> assert (Node_id.equal owner from)
         | None, _ -> assert false)
      done;
      let avg = float_of_int !total /. float_of_int probes in
      let log2n = log (float_of_int n) /. log 2.0 in
      (* Greedy finger routing: 2x log2 n plus slack for tiny rings. *)
      avg <= (2.0 *. log2n) +. 4.0)

let ring_churn_prop =
  QCheck.Test.make ~name:"ring: join/leave churn preserves sortedness and membership"
    ~count:50
    QCheck.(list (pair bool (int_range 0 255)))
    (fun ops ->
      let r = Ring.create () in
      let reference = Hashtbl.create 64 in
      let id_of i = Node_id.of_string (Printf.sprintf "churn-%d" i) in
      (* Seed membership, then replay the random join/leave script. *)
      List.iter
        (fun i ->
          Ring.join r (id_of i);
          Hashtbl.replace reference i ())
        [ 0; 1; 2; 3 ];
      List.iter
        (fun (join, i) ->
          if join then begin
            Ring.join r (id_of i);
            Hashtbl.replace reference i ()
          end
          else begin
            Ring.leave r (id_of i);
            Hashtbl.remove reference i
          end)
        ops;
      let expected =
        Hashtbl.fold (fun i () acc -> id_of i :: acc) reference []
        |> List.sort Node_id.compare
      in
      let got = Ring.nodes r in
      let rec sorted_distinct = function
        | a :: (b :: _ as rest) -> Node_id.compare a b < 0 && sorted_distinct rest
        | _ -> true
      in
      Ring.size r = List.length expected
      && sorted_distinct got
      && List.equal Node_id.equal got expected
      && List.for_all (fun id -> Ring.mem r id) expected)

let test_ring_successors () =
  let r = Ring.create () in
  List.iter (fun i -> Ring.join r (Node_id.of_int i)) [ 10; 20; 30 ];
  let ints key k = List.map Node_id.to_int (Ring.successors r (Node_id.of_int key) ~k) in
  Alcotest.(check (list int)) "owner plus successors" [ 20; 30 ] (ints 15 2);
  Alcotest.(check (list int)) "wraps" [ 30; 10 ] (ints 25 2);
  Alcotest.(check (list int)) "clamps to ring size" [ 10; 20; 30 ] (ints 5 7);
  Alcotest.(check (list int)) "k=1 is the owner" [ 20 ] (ints 20 1);
  Alcotest.(check (list int)) "empty ring" []
    (List.map Node_id.to_int (Ring.successors (Ring.create ()) (Node_id.of_int 1) ~k:2))

(* {1 Hotspot detection and sloppy replication} *)

(* A DHT with [n] nodes, hotspots enabled, one announced key, and the
   name->id mapping the assertions need. *)
let hot_dht ?(n = 24) ?(threshold = 5.0) ?(replicas = 3) ?(ttl = 30.0) () =
  let dht = Dht.create ~seed:99 () in
  let names = List.init n (fun i -> Printf.sprintf "edge-%02d" i) in
  let ids = List.map (fun name -> (name, Dht.join dht name)) names in
  Dht.set_hotspots dht ~threshold ~replicas ~ttl ();
  (dht, names, ids)

let name_of ids id = fst (List.find (fun (_, i) -> Node_id.equal i id) ids)

(* Hammer [key] with reads from every node, advancing the clock by
   [dt] per read; returns the final clock. *)
let crowd dht names ~key ~from_t ~dt ~rounds ~check =
  let now = ref from_t in
  for _ = 1 to rounds do
    List.iter
      (fun from ->
        now := !now +. dt;
        check (Dht.get dht ~now:!now ~from ~key))
      names
  done;
  !now

let test_hotspot_replicated_reads_identical () =
  (* Crowd a key: replication must trigger, sloppy hits must occur, and
     every read — served by owner, replica set, or sloppy holder — must
     return bit-identical values. *)
  let dht, names, _ = hot_dht () in
  let key = "GET http://popular.example/front" in
  ignore (Dht.put dht ~now:0.0 ~from:(List.hd names) ~key ~value:"holder-A" ~ttl:3600.0);
  let m = Dht.metrics dht in
  let _ =
    crowd dht names ~key ~from_t:0.0 ~dt:0.01 ~rounds:8 ~check:(fun l ->
        Alcotest.(check (list string)) "bit-identical values" [ "holder-A" ] l.Dht.values)
  in
  Alcotest.(check bool) "replication triggered" true
    (Core.Telemetry.Metrics.counter m "dht.hotspot_replications" > 0);
  Alcotest.(check bool) "sloppy holders served lookups" true
    (Core.Telemetry.Metrics.counter m "dht.sloppy_hits" > 0);
  Alcotest.(check bool) "key listed hot" true
    (List.exists (fun (k, _) -> k = key) (Dht.hotspots dht ~now:2.0));
  (* Write-through: a new announcement under the hot key is visible in
     every subsequent read, sloppy or not. *)
  ignore (Dht.put dht ~now:2.0 ~from:(List.nth names 3) ~key ~value:"holder-B" ~ttl:3600.0);
  let _ =
    crowd dht names ~key ~from_t:2.0 ~dt:0.01 ~rounds:2 ~check:(fun l ->
        Alcotest.(check (list string)) "write-through" [ "holder-B"; "holder-A" ] l.Dht.values)
  in
  ()

let test_hotspot_replicas_expire () =
  (* Replicas are soft state: after the TTL with no sweep-triggering
     traffic, the ring reconverges to the no-replica equilibrium. *)
  let dht, names, _ = hot_dht ~ttl:10.0 () in
  let key = "GET http://flash.example/crowd" in
  ignore (Dht.put dht ~now:0.0 ~from:(List.hd names) ~key ~value:"v" ~ttl:3600.0);
  let t = crowd dht names ~key ~from_t:0.0 ~dt:0.01 ~rounds:8 ~check:ignore in
  Alcotest.(check bool) "placement active" true (Dht.sloppy_replicas dht > 0);
  (* The crowd moves on; past the TTL a sweep expires the placement. *)
  Dht.sweep dht ~now:(t +. 11.0);
  Alcotest.(check int) "placements expired" 0 (Dht.sloppy_replicas dht);
  Alcotest.(check (float 0.1)) "hotspots gauge reconverged" 0.0
    (Core.Telemetry.Metrics.gauge (Dht.metrics dht) "dht.hotspots");
  (* Decay also empties the hot list: the rate estimator halves every
     10 s (default halflife), so minutes later nothing is hot. *)
  Alcotest.(check (list (pair string (float 1e9)))) "no hot keys" []
    (Dht.hotspots dht ~now:(t +. 600.0));
  (* And reads still work — served by the owner again. *)
  let l = Dht.get dht ~now:(t +. 11.5) ~from:(List.nth names 5) ~key in
  Alcotest.(check (list string)) "owner still serves" [ "v" ] l.Dht.values

let test_hotspot_crashed_holder_falls_back () =
  (* One arm under an nk_faults chaos plan: crash every node except
     the key's owner and the reader mid-run. Sloppy holders die with
     the rest; reads must fall back to the owner, bit-identically. *)
  let dht, names, ids = hot_dht ~n:16 ~threshold:2.0 () in
  let key = "GET http://fragile.example/hot" in
  ignore (Dht.put dht ~now:0.0 ~from:(List.hd names) ~key ~value:"gold" ~ttl:3600.0);
  let owner =
    match (Dht.get dht ~now:0.0 ~from:(List.hd names) ~key).Dht.owner with
    | Some id -> name_of ids id
    | None -> Alcotest.fail "key has an owner"
  in
  let reader = List.find (fun n -> n <> owner) names in
  let crash_at = 1.0 in
  let plan = Core.Faults.Plan.create () in
  List.iter
    (fun n -> if n <> owner && n <> reader then Core.Faults.Plan.crash plan ~host:n ~at:crash_at ())
    names;
  (* Mirror the cluster wiring: DHT liveness follows the fault plan. *)
  let now = ref 0.0 in
  Dht.set_liveness dht (fun n -> not (Core.Faults.Plan.is_down plan ~now:!now n));
  (* Crowd the key before the crash so sloppy holders exist. *)
  let t = crowd dht names ~key ~from_t:0.0 ~dt:0.002 ~rounds:8 ~check:ignore in
  Alcotest.(check bool) "holders placed pre-crash" true (Dht.sloppy_replicas dht > 0);
  let hits_before = Core.Telemetry.Metrics.counter (Dht.metrics dht) "dht.sloppy_hits" in
  Alcotest.(check bool) "crash hits after the warm-up crowd" true (t < crash_at);
  (* After the crash, only owner and reader live: every read from the
     reader must skip dead holders and reach the owner. *)
  now := crash_at +. 0.5;
  for i = 1 to 50 do
    now := !now +. 0.01;
    let l = Dht.get dht ~now:!now ~from:reader ~key in
    Alcotest.(check (list string)) (Printf.sprintf "read %d falls back to owner" i)
      [ "gold" ] l.Dht.values
  done;
  ignore hits_before

let suite =
  [
    Alcotest.test_case "node ids are deterministic" `Quick test_node_id_deterministic;
    Alcotest.test_case "ring distance" `Quick test_node_id_distance;
    Alcotest.test_case "clockwise intervals" `Quick test_node_id_interval;
    Alcotest.test_case "ring membership" `Quick test_ring_membership;
    Alcotest.test_case "ring successor" `Quick test_ring_successor;
    Alcotest.test_case "lookup paths terminate at the owner" `Quick
      test_ring_lookup_path_terminates;
    Alcotest.test_case "greedy routing is O(log n)" `Quick test_ring_lookup_log_hops;
    Alcotest.test_case "dht: put/get across nodes" `Quick test_dht_put_get;
    Alcotest.test_case "dht: soft state expires" `Quick test_dht_ttl_expiry;
    Alcotest.test_case "dht: multiple announcements coexist" `Quick test_dht_multiple_values;
    Alcotest.test_case "dht: re-announcement refreshes" `Quick test_dht_reannounce_dedupes;
    Alcotest.test_case "dht: per-key value cap" `Quick test_dht_value_cap;
    Alcotest.test_case "dht: leave drops stored state" `Quick test_dht_leave_drops_state;
    Alcotest.test_case "dht: unjoined sender rejected" `Quick test_dht_unjoined_put_raises;
    Alcotest.test_case "dht: churn with re-announcement" `Quick test_dht_survives_churn;
    Alcotest.test_case "dht: lookups fall back around a crashed replica" `Quick
      test_dht_lookup_under_churn;
    Alcotest.test_case "ring: consistent ownership from all nodes" `Quick
      test_ring_lookup_consistent_across_nodes;
    QCheck_alcotest.to_alcotest dht_soft_state_prop;
    Alcotest.test_case "redirector: picks nearest proxy" `Quick test_redirector_nearest;
    Alcotest.test_case "redirector: spread balances load" `Quick test_redirector_spread;
    Alcotest.test_case "redirector: empty pool" `Quick test_redirector_empty;
    Alcotest.test_case "redirector: remove proxy" `Quick test_redirector_remove;
    Alcotest.test_case "redirector: spread clamps to the pool" `Quick
      test_redirector_spread_clamped;
    Alcotest.test_case "redirector: crashed proxies are never picked" `Quick
      test_redirector_skips_crashed;
    Alcotest.test_case "redirector: headroom weighting avoids saturated nodes" `Quick
      test_redirector_health_weighting;
    Alcotest.test_case "redirector: stale incarnation reports ignored" `Quick
      test_redirector_incarnation_guard;
    Alcotest.test_case "redirector: silent nodes age out of rotation" `Quick
      test_redirector_staleness_bound;
    QCheck_alcotest.to_alcotest ring_successor_matches_reference_prop;
    QCheck_alcotest.to_alcotest ring_lookup_path_scales_prop;
    QCheck_alcotest.to_alcotest ring_churn_prop;
    Alcotest.test_case "ring: successor sets" `Quick test_ring_successors;
    Alcotest.test_case "hotspot: replicated reads are bit-identical" `Quick
      test_hotspot_replicated_reads_identical;
    Alcotest.test_case "hotspot: replicas expire and the ring reconverges" `Quick
      test_hotspot_replicas_expire;
    Alcotest.test_case "hotspot: crashed holders fall back to the owner (chaos plan)" `Quick
      test_hotspot_crashed_holder_falls_back;
  ]
