let () =
  Alcotest.run "nakika"
    [
      ("util", Test_util.suite);
      ("crypto", Test_crypto.suite);
      ("regex", Test_regex.suite);
      ("http", Test_http.suite);
      ("script", Test_script.suite);
      ("compile", Test_compile.suite);
      ("analysis", Test_analysis.suite);
      ("policy", Test_policy.suite);
      ("sim", Test_sim.suite);
      ("cache", Test_cache.suite);
      ("overlay", Test_overlay.suite);
    ("diffusion", Test_diffusion.suite);
      ("resource", Test_resource.suite);
      ("replication", Test_replication.suite);
      ("integrity", Test_integrity.suite);
      ("vocab", Test_vocab.suite);
      ("json", Test_json.suite);
      ("pretty", Test_pretty.suite);
      ("movie", Test_movie.suite);
      ("pipeline", Test_pipeline.suite);
      ("node", Test_node.suite);
      ("provision", Test_provision.suite);
      ("faults", Test_faults.suite);
      ("telemetry", Test_telemetry.suite);
      ("workload", Test_workload.suite);
      ("extensions", Test_extensions.suite);
    ]
