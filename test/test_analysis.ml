(* The static analyzer ([Nk_analysis]): golden diagnostics for each
   pass (scope, call shape, cost, taint), soundness of the cost bounds
   against measured interpreter fuel, the per-source analysis cache,
   lint gating in [Stage.of_script] and in a node's stage loader, and a
   property linking the scope pass to the interpreter: programs the
   analyzer calls error-free never raise an undefined-variable error at
   runtime. *)

open Core.Script
module A = Core.Analysis.Analysis
module D = Core.Analysis.Diagnostic
module C = Core.Analysis.Cost

(* Render a diagnostic as "line:col sev code" — position and class,
   stable under message rewording. *)
let key (d : D.t) =
  Printf.sprintf "%d:%d %s %s" d.D.pos.Ast.line d.D.pos.Ast.col
    (D.severity_label d.D.severity)
    d.D.code

let diags source = List.map key (A.analyze (Parser.parse source)).A.diagnostics

let check_diags name expected source =
  Alcotest.(check (list string)) name expected (diags source)

(* --- scope pass ------------------------------------------------------ *)

let test_scope_undefined () =
  check_diags "toplevel read of an unknown name"
    [ "1:9 error undefined-var" ] "var a = nope;";
  check_diags "clean straight-line program" [] "var a = 1; var b = a + 1; b";
  check_diags "toplevel read before the var executes"
    [ "1:9 error undefined-var" ] "var a = b; var b = 2;"

let test_scope_hoisting () =
  (* Function declarations hoist ([Interp] re-hoists per statement
     list), so a call textually before the declaration is clean. *)
  check_diags "call before function declaration" []
    "var r = twice(2); function twice(n) { return n + n; }";
  (* A function expression bound with [var] can only be called once
     its [var] has executed (the first-call refinement), so the
     recursive read of [f] is scope-clean — but the cost pass still
     reports the recursion. *)
  check_diags "self-recursive function expression"
    [ "1:23 info cost-unbounded" ]
    "var f = function(n) { return f(n); }; var z = 0;"

let test_scope_conditional_join () =
  (* Declared on only one branch: possibly — not definitely —
     undefined afterwards, so a warning rather than an error. *)
  check_diags "one-armed if may leave the name unbound"
    [ "1:34 warning use-before-decl" ]
    "if (true) { var v = 1; } var w = v;";
  (* Assignments create globals, so a name assigned on both arms is
     definitely bound afterwards (intersection join). *)
  check_diags "both arms assign" []
    "var c = 1; if (c) { v = 1; } else { v = 2; } var w = v;"

let test_scope_unused_and_duplicates () =
  check_diags "unused parameter"
    [ "1:1 warning unused-binding" ]
    "function f(p) { return 1; } f();";
  check_diags "duplicate declaration"
    [ "2:1 warning duplicate-decl" ] "var d = 1;\nvar d = 2;\nd";
  (* Two [for (var i = ...)] loops in one scope are idiomatic — no
     duplicate-decl noise. *)
  check_diags "for-init re-declaration tolerated" []
    "var s = 0; for (var i = 0; i < 2; i++) { s += i; } for (var i = 0; i < 2; i++) { s += i; }"

let test_scope_builtins () =
  check_diags "shadowing a vocabulary global"
    [ "1:1 warning shadow-builtin" ] "var Math = 1; Math"

(* --- call-shape pass ------------------------------------------------- *)

let test_callshape () =
  check_diags "unknown method with suggestion"
    [ "1:18 error unknown-method" ] "var q = Math.cbrt(2);";
  check_diags "wrong native arity"
    [ "1:22 warning bad-arity" ] {|var r = Regex.replace("x", "y");|};
  check_diags "strict-arity native is an error"
    [ "1:18 error bad-arity" ] "var b = ByteArray(1, 2);";
  check_diags "namespace is not callable"
    [ "1:13 error not-a-function" ] "var u = Math();";
  check_diags "namespace is not constructible"
    [ "1:9 error not-a-constructor" ] "var u = new Math();";
  (* Shadowing a global suspends shape checks on it: the analyzer no
     longer knows what the name denotes. *)
  check_diags "shadowed global is exempt"
    [ "1:1 warning shadow-builtin" ] "var Regex = 1; Regex.replace(1);"

let test_policy_shape () =
  check_diags "misspelled handler field"
    [ "1:35 warning unknown-policy-field" ]
    "var p = new Policy(); p.onrequest = function() { return null; }; p.register();";
  check_diags "handler must be a function"
    [ "1:36 error bad-policy-field" ]
    {|var p = new Policy(); p.onResponse = "nope"; p.register();|};
  check_diags "never registered"
    [ "1:1 warning unregistered-policy" ] "var p = new Policy();";
  check_diags "well-formed policy is clean" []
    {|var p = new Policy(); p.url = ["x.org"]; p.onResponse = function() { return null; }; p.register();|}

(* --- cost pass ------------------------------------------------------- *)

let cost_items source = (A.analyze (Parser.parse source)).A.costs

let find_cost name items =
  match List.find_opt (fun (i : C.item) -> i.C.name = name) items with
  | Some i -> i.C.bound
  | None -> Alcotest.failf "no cost item for %s" name

let bounded_source =
  "function work() { var total = 0; for (var i = 0; i < 10; i++) { total = total + i; } return total; }"

let test_cost_bounds () =
  (match find_cost "work" (cost_items bounded_source) with
  | C.Bounded { fuel; allocs } ->
    Alcotest.(check bool) "constant-trip loop bounded" true (fuel > 0 && fuel < 1_000);
    Alcotest.(check bool) "allocation events stay small" true (allocs <= 10)
  | C.Unbounded { reason; _ } -> Alcotest.failf "work unbounded: %s" reason);
  (match find_cost "spin" (cost_items "function spin() { while (true) { } }") with
  | C.Unbounded _ -> ()
  | C.Bounded _ -> Alcotest.fail "while(true) must be unbounded");
  match find_cost "rec" (cost_items "function rec(n) { return rec(n); }") with
  | C.Unbounded { reason; _ } ->
    Alcotest.(check bool) "recursion named in the reason" true
      (let re = Core.Util.Strutil.contains_sub reason ~sub:"recursion" in
       re)
  | C.Bounded _ -> Alcotest.fail "self-recursion must be unbounded"

(* The bound must dominate what [Interp] actually charges: run the
   bounded function and compare measured fuel to the static bound.
   The call site itself costs a few fuel (statement, callee and call
   expressions) beyond the per-invocation item. *)
let test_cost_covers_measured_fuel () =
  let measure src =
    let ctx = Interp.create ~max_fuel:100_000 () in
    Builtins.install ctx;
    ignore (Interp.run_string ctx src);
    Interp.fuel_used ctx
  in
  let without = measure bounded_source in
  let with_call = measure (bounded_source ^ " work();") in
  let invocation = with_call - without in
  match find_cost "work" (cost_items bounded_source) with
  | C.Bounded { fuel; _ } ->
    Alcotest.(check bool)
      (Printf.sprintf "static bound %d covers measured invocation %d" fuel invocation)
      true
      (fuel + 4 >= invocation)
  | C.Unbounded { reason; _ } -> Alcotest.failf "work unbounded: %s" reason

let test_cost_info_diagnostic () =
  check_diags "unbounded handler surfaces as info"
    [ "1:51 info cost-unbounded" ]
    "var p = new Policy(); p.onResponse = function() { while (Response.read()) { } return null; }; p.register();"

(* --- taint pass ------------------------------------------------------ *)

let test_taint () =
  check_diags "cookie reaches the response body"
    [ "3:17 warning taint-flow" ]
    {|var p = new Policy();
p.onResponse = function() {
  Response.write(Request.header("Cookie"));
  return null;
};
p.register();|};
  check_diags "flow through a derived binding"
    [ "2:12 warning taint-flow" ]
    {|var c = Request.header("authorization");
Cache.store("k", c + "!", 10);|};
  check_diags "benign headers do not taint" []
    {|var c = Request.header("Accept"); Response.setHeader("X-A", c);|}

(* --- parse failures and position plumbing ---------------------------- *)

let test_parse_error_report () =
  let r = A.analyze_program_source "var ][ nope" in
  Alcotest.(check int) "one error" 1 (A.errors r);
  match r.A.diagnostics with
  | [ d ] -> Alcotest.(check string) "code" "parse-error" d.D.code
  | ds -> Alcotest.failf "expected a single diagnostic, got %d" (List.length ds)

let test_for_init_position () =
  (* The for-init expression clause must carry the initializer's own
     position, not the [for] keyword's (satellite fix in [Parser]). *)
  match Parser.parse "var x = 0; for (x = 1; x < 2; x++) { }" with
  | [ _; { Ast.sdesc = Ast.Sfor (Some init, _, _, _); _ } ] ->
    Alcotest.(check int) "init clause column" 17 init.Ast.spos.Ast.col
  | _ -> Alcotest.fail "unexpected parse shape"

(* --- the analysis cache ---------------------------------------------- *)

let test_analysis_cache () =
  A.cache_clear ();
  let events = ref [] in
  let on_cache e = events := e :: !events in
  let src = "var a = 1; a" in
  ignore (A.analyze_source ~on_cache src);
  ignore (A.analyze_source ~on_cache src);
  ignore (A.analyze_source ~on_cache (src ^ " "));
  Alcotest.(check (list bool))
    "miss, hit, miss" [ false; true; false ]
    (List.rev_map (fun e -> e = `Hit) !events);
  let stats = A.cache_stats () in
  Alcotest.(check int) "hits" 1 stats.A.hits;
  Alcotest.(check int) "misses" 2 stats.A.misses;
  Alcotest.(check int) "entries" 2 stats.A.entries

(* --- lint gating in Stage.of_script ---------------------------------- *)

let host = Core.Vocab.Hostcall.stub ()

(* Lints with an error (undefined 'frobnicate') but only fails at
   request time — admission control must catch it statically. *)
let broken_script =
  "var p = new Policy(); p.onRequest = function() { return frobnicate(); }; p.register();"

let test_stage_lint_strict () =
  match
    Core.Pipeline.Stage.of_script ~url:"http://x.org/nakika.js" ~host
      ~lint:`Strict ~source:broken_script ()
  with
  | Ok _ -> Alcotest.fail "strict lint must reject"
  | Error msg ->
    Alcotest.(check bool) "message names the lint gate" true
      (Core.Util.Strutil.contains_sub msg ~sub:"rejected by lint")

let test_stage_lint_permissive () =
  let seen = ref None in
  (match
     Core.Pipeline.Stage.of_script ~url:"http://x.org/nakika.js" ~host
       ~lint:`Permissive
       ~on_lint:(fun r -> seen := Some r)
       ~source:broken_script ()
   with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "permissive lint must admit: %s" msg);
  match !seen with
  | Some r -> Alcotest.(check bool) "report still sees the error" true (A.errors r > 0)
  | None -> Alcotest.fail "on_lint not called"

let test_stage_lint_off () =
  let called = ref false in
  match
    Core.Pipeline.Stage.of_script ~url:"http://x.org/nakika.js" ~host ~lint:`Off
      ~on_lint:(fun _ -> called := true)
      ~source:broken_script ()
  with
  | Ok _ -> Alcotest.(check bool) "analysis skipped" false !called
  | Error msg -> Alcotest.failf "lint off must admit: %s" msg

(* --- node integration: strict vs permissive admission ---------------- *)

open Core.Node

let fetch_sync cluster ~client ~proxy req =
  let result = ref None in
  Cluster.fetch cluster ~client ~proxy req (fun resp -> result := Some resp);
  Cluster.run cluster;
  match !result with Some r -> r | None -> Alcotest.fail "no response"

let lint_site cluster =
  let origin = Cluster.add_origin cluster ~name:"www.example.edu" () in
  Origin.set_static origin ~path:"/index.html" ~max_age:300 "<html>hello</html>";
  Origin.set_static origin ~path:"/nakika.js" ~content_type:"text/javascript"
    ~max_age:300 broken_script;
  origin

let test_node_strict_rejects () =
  let cluster = Cluster.create () in
  ignore (lint_site cluster);
  (* A scriptless site first: its request warms only the two well-known
     wall stages, giving the stage-cache baseline. *)
  let plain = Cluster.add_origin cluster ~name:"www.plain.edu" () in
  Origin.set_static plain ~path:"/p.html" ~max_age:300 "plain";
  let config = { Config.default with Config.lint_mode = `Strict } in
  let proxy = Cluster.add_proxy cluster ~name:"nk1.nakika.net" ~config () in
  let client = Cluster.add_client cluster ~name:"c1" in
  ignore
    (fetch_sync cluster ~client ~proxy
       (Core.Http.Message.request "http://www.plain.edu/p.html"));
  let walls = Node.stage_cache_entries proxy in
  let resp =
    fetch_sync cluster ~client ~proxy
      (Core.Http.Message.request "http://www.example.edu/index.html")
  in
  (* The stage is refused at admission, so the page is served untouched
     instead of hitting the broken handler. *)
  Alcotest.(check int) "served without the script" 200 resp.Core.Http.Message.status;
  Alcotest.(check int) "no stage admitted beyond the walls" walls
    (Node.stage_cache_entries proxy);
  let m = Node.metrics proxy in
  Alcotest.(check bool) "lint errors exported" true
    (Core.Telemetry.Metrics.counter_total m "script.lint.errors" > 0);
  Alcotest.(check bool) "rejection traced as a script error" true
    (Core.Sim.Trace.count (Node.trace proxy) "script-errors" > 0)

let test_node_permissive_admits () =
  let cluster = Cluster.create () in
  ignore (lint_site cluster);
  let proxy = Cluster.add_proxy cluster ~name:"nk1.nakika.net" () in
  let client = Cluster.add_client cluster ~name:"c1" in
  let resp =
    fetch_sync cluster ~client ~proxy
      (Core.Http.Message.request "http://www.example.edu/index.html")
  in
  (* Default (permissive) mode admits the stage; the broken handler
     then fails at request time — exactly the outcome strict mode
     front-runs. *)
  Alcotest.(check int) "broken handler fails the request" 500
    resp.Core.Http.Message.status;
  Alcotest.(check bool) "stage was admitted" true (Node.stage_cache_entries proxy >= 1);
  let m = Node.metrics proxy in
  Alcotest.(check bool) "lint errors still counted" true
    (Core.Telemetry.Metrics.counter_total m "script.lint.errors" > 0)

(* --- soundness property ---------------------------------------------- *)

(* If the scope pass reports no error-severity diagnostic, running the
   program must never raise an undefined-variable error: the analyzer's
   errors are exactly the class "will/may read an unbound name", so a
   clean bill means every read is backed by a prelude binding, a
   hoisted function, or a dominating declaration. Warnings deliberately
   stay may-information and are not part of the claim. *)
let scope_soundness_prop =
  QCheck.Test.make
    ~name:"scope-clean programs never raise undefined-variable errors"
    ~count:300
    (QCheck.make ~print:Pretty.program Test_compile.gen_program)
    (fun stmts ->
      let prog = Test_compile.prelude @ stmts in
      if A.errors (A.analyze prog) > 0 then true
      else
        let outcome = Test_compile.run_with Interp.run prog in
        match outcome.Test_compile.result with
        | Error m when Core.Util.Strutil.contains_sub m ~sub:"is not defined" ->
          QCheck.Test.fail_reportf
            "analyzer saw no errors but execution raised: %s" m
        | _ -> true)

let suite =
  [
    Alcotest.test_case "scope: undefined variables" `Quick test_scope_undefined;
    Alcotest.test_case "scope: function hoisting" `Quick test_scope_hoisting;
    Alcotest.test_case "scope: conditional joins" `Quick test_scope_conditional_join;
    Alcotest.test_case "scope: unused and duplicate bindings" `Quick
      test_scope_unused_and_duplicates;
    Alcotest.test_case "scope: builtin shadowing" `Quick test_scope_builtins;
    Alcotest.test_case "call shape: natives and namespaces" `Quick test_callshape;
    Alcotest.test_case "call shape: policy registration" `Quick test_policy_shape;
    Alcotest.test_case "cost: bounds per function" `Quick test_cost_bounds;
    Alcotest.test_case "cost: bound covers measured fuel" `Quick
      test_cost_covers_measured_fuel;
    Alcotest.test_case "cost: unbounded handler info" `Quick test_cost_info_diagnostic;
    Alcotest.test_case "taint: credential flows" `Quick test_taint;
    Alcotest.test_case "parse errors become diagnostics" `Quick test_parse_error_report;
    Alcotest.test_case "parser: for-init positions" `Quick test_for_init_position;
    Alcotest.test_case "analysis cache" `Quick test_analysis_cache;
    Alcotest.test_case "stage lint: strict rejects" `Quick test_stage_lint_strict;
    Alcotest.test_case "stage lint: permissive admits" `Quick test_stage_lint_permissive;
    Alcotest.test_case "stage lint: off skips" `Quick test_stage_lint_off;
    Alcotest.test_case "node: strict lint refuses the stage" `Quick
      test_node_strict_rejects;
    Alcotest.test_case "node: permissive lint admits and counts" `Quick
      test_node_permissive_admits;
    QCheck_alcotest.to_alcotest scope_soundness_prop;
  ]
