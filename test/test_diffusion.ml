(* Proactive computation diffusion (C3PO over the health plane): the
   pressure signal, the offload protocol end to end over the message
   bus, fallback safety under crashed targets, the hash-miss script
   fetch path, and the incarnation guards under chaos. *)

open Core.Node
open Core.Http
module Offload = Core.Diffusion.Offload
module Pressure = Core.Diffusion.Pressure
module Bus = Core.Replication.Message_bus

let fetch_sync cluster ~client ?proxy req =
  let result = ref None in
  Cluster.fetch cluster ~client ?proxy req (fun resp -> result := Some resp);
  Cluster.run cluster;
  match !result with Some r -> r | None -> Alcotest.fail "no response"

let body (r : Message.response) = Body.to_string r.Message.resp_body

let site_script =
  {|
var p = new Policy();
p.url = ["www.example.edu"];
p.onResponse = function() {
  var b = "", c;
  while ((c = Response.read()) != null) { b += c; }
  Response.write(b.replace("hello", "edge"));
}
p.register();
|}

let transforming_site cluster =
  let origin = Cluster.add_origin cluster ~name:"www.example.edu" () in
  Origin.set_static origin ~path:"/index.html" ~max_age:300 "<html>hello</html>";
  Origin.set_static origin ~path:"/nakika.js" ~content_type:"text/javascript" ~max_age:300
    site_script;
  origin

let diffusion_config =
  {
    Config.default with
    Config.enable_diffusion = true;
    (* Offload on any pressure at all, and trust planted/gossiped
       neighbor entries for a long time: the tests drive the decision
       deterministically instead of waiting for a real flash crowd. *)
    diffusion_low_water = 0.0;
    diffusion_staleness = 1000.0;
    diffusion_offload_timeout = 0.3;
  }

(* --- pressure: monotone, bounded, proactive crossing ------------------- *)

let pressure_monotone_prop =
  QCheck.Test.make ~name:"diffusion pressure: bounded and monotone in every input"
    ~count:300
    QCheck.(
      quad (float_range 0.0 5.0) (float_range 0.0 1.0) (float_range 0.0 1.0)
        (float_range 0.0 2.0))
    (fun (delay, shed, qfrac, delta) ->
      let p = Pressure.compute ~target:0.5 ~queue_delay:delay ~shed_rate:shed ~queue_frac:qfrac in
      let ok_bounds = p >= 0.0 && p <= 1.0 in
      let mono f = f () >= p -. 1e-12 in
      ok_bounds
      && mono (fun () ->
             Pressure.compute ~target:0.5 ~queue_delay:(delay +. delta) ~shed_rate:shed
               ~queue_frac:qfrac)
      && mono (fun () ->
             Pressure.compute ~target:0.5 ~queue_delay:delay
               ~shed_rate:(Float.min 1.0 (shed +. delta))
               ~queue_frac:qfrac)
      && mono (fun () ->
             Pressure.compute ~target:0.5 ~queue_delay:delay ~shed_rate:shed
               ~queue_frac:(Float.min 1.0 (qfrac +. delta)))
      || QCheck.Test.fail_reportf "non-monotone at delay=%f shed=%f qfrac=%f delta=%f"
           delay shed qfrac delta)

let test_pressure_crossing () =
  (* The signal crosses 0.5 exactly when the queueing delay reaches the
     admission target — the low water sits below that, which is what
     makes diffusion proactive rather than an echo of shedding. *)
  Alcotest.(check (float 1e-9)) "0.5 at target" 0.5
    (Pressure.compute ~target:0.5 ~queue_delay:0.5 ~shed_rate:0.0 ~queue_frac:0.0);
  Alcotest.(check (float 1e-9)) "idle is zero" 0.0
    (Pressure.compute ~target:0.5 ~queue_delay:0.0 ~shed_rate:0.0 ~queue_frac:0.0);
  Alcotest.(check bool) "below target is below 0.5" true
    (Pressure.compute ~target:0.5 ~queue_delay:0.2 ~shed_rate:0.0 ~queue_frac:0.0 < 0.5);
  Alcotest.(check (float 1e-9)) "full shed saturates" 1.0
    (Pressure.compute ~target:0.5 ~queue_delay:0.0 ~shed_rate:1.0 ~queue_frac:0.0)

(* --- a spy bus member that plays the offload sender -------------------- *)

(* Attach a fake member to the deployment's bus so the test can address
   offload envelopes at real nodes and capture their replies without
   going through a (load-dependent) sender-side policy decision. *)
let attach_spy cluster ~host =
  let bus = Cluster.bus cluster in
  let replies = ref [] in
  Bus.attach bus ~name:"spy" ~host;
  Bus.subscribe bus ~name:"spy" ~topic:(Offload.reply_topic "spy")
    ~handler:(fun ~payload ~from:_ ->
      match Offload.decode_reply_envelope payload with
      | Ok r -> replies := r :: !replies
      | Error e -> Alcotest.fail ("undecodable reply: " ^ e));
  let send ~id ~target ~site ~script_hash req =
    let env =
      {
        Offload.id;
        origin_node = "spy";
        origin_incarnation = 0;
        target;
        target_incarnation = 0;
        site;
        script_hash;
        request = req;
      }
    in
    Bus.publish bus ~from:"spy" ~topic:(Offload.request_topic target)
      ~payload:(Offload.encode_request_envelope env)
  in
  (send, replies)

let reply_for replies id =
  match List.find_opt (fun (r : Offload.reply_envelope) -> r.Offload.reply_id = id) !replies with
  | Some r -> r.Offload.outcome
  | None -> Alcotest.fail (Printf.sprintf "no reply for offload %d" id)

(* --- offload round-trip equivalence ------------------------------------ *)

let test_offload_round_trip_equivalence () =
  (* The same request executed remotely on two different nodes — one
     resolving the script by fetching it from the origin (hash miss),
     one by the shipped SHA-256 alone (compile-cache hit) — must
     produce identical responses and identical fuel/heap accounting;
     and a client going through the ordinary local path must see the
     same content. *)
  Core.Script.Compile.cache_clear ();
  let cluster = Cluster.create () in
  ignore (transforming_site cluster);
  let p2 = Cluster.add_proxy cluster ~name:"nk2.nakika.net" ~config:diffusion_config () in
  let p3 = Cluster.add_proxy cluster ~name:"nk3.nakika.net" ~config:diffusion_config () in
  let p4 = Cluster.add_proxy cluster ~name:"nk4.nakika.net" ~config:diffusion_config () in
  let client = Cluster.add_client cluster ~name:"c1" in
  let send, replies = attach_spy cluster ~host:client in
  let hash = Core.Crypto.Sha256.digest site_script in
  let req () = Message.request "http://www.example.edu/index.html" in
  (* Cold receiver: nothing compiled in-process, so this is the
     hash-miss path (bounded origin fetch). *)
  send ~id:0 ~target:"nk2.nakika.net" ~site:"www.example.edu" ~script_hash:hash (req ());
  Cluster.run cluster;
  (* Warm process: nk2's compile landed in the process-wide cache, so
     nk3 resolves the hash without ever seeing the source. *)
  send ~id:1 ~target:"nk3.nakika.net" ~site:"www.example.edu" ~script_hash:hash (req ());
  Cluster.run cluster;
  let fuel2, heap2, resp2 =
    match reply_for replies 0 with
    | Offload.Executed { response; fuel; heap } -> (fuel, heap, response)
    | Offload.Rejected r -> Alcotest.fail ("nk2 rejected: " ^ r)
  in
  let fuel3, heap3, resp3 =
    match reply_for replies 1 with
    | Offload.Executed { response; fuel; heap } -> (fuel, heap, response)
    | Offload.Rejected r -> Alcotest.fail ("nk3 rejected: " ^ r)
  in
  Alcotest.(check string) "transformed remotely" "<html>edge</html>" (body resp2);
  Alcotest.(check int) "status" 200 resp2.Message.status;
  Alcotest.(check string) "identical bodies" (body resp2) (body resp3);
  Alcotest.(check int) "identical status" resp2.Message.status resp3.Message.status;
  Alcotest.(check bool) "script actually ran (fuel > 0)" true (fuel2 > 0);
  Alcotest.(check int) "bit-identical fuel" fuel2 fuel3;
  Alcotest.(check int) "bit-identical heap" heap2 heap3;
  Alcotest.(check int) "cold receiver paid one hash miss" 1
    (Core.Telemetry.Metrics.counter (Node.metrics p2) "diffusion.hash_misses");
  Alcotest.(check int) "warm receiver resolved by hash alone" 0
    (Core.Telemetry.Metrics.counter (Node.metrics p3) "diffusion.hash_misses");
  (* The ordinary local path agrees with the migrated execution. *)
  let local = fetch_sync cluster ~client ~proxy:p4 (req ()) in
  Alcotest.(check string) "local path sees the same content" (body resp2) (body local);
  Alcotest.(check int) "local path sees the same status" resp2.Message.status
    local.Message.status

(* --- fallback: a dead target never loses a request --------------------- *)

let test_fallback_on_breaker_open () =
  (* nk2 is crashed from the start but planted as an idle neighbor: the
     first offload attempts time out (breaker failures), the breaker
     trips, and later requests fall back immediately — every request
     still gets its response locally. *)
  let epoch = 1_136_073_600.0 in
  let plan = Core.Faults.Plan.create () in
  Core.Faults.Plan.crash plan ~host:"nk2.nakika.net" ~at:epoch ();
  let cluster = Cluster.create ~faults:plan () in
  ignore (transforming_site cluster);
  let p1 = Cluster.add_proxy cluster ~name:"nk1.nakika.net" ~config:diffusion_config () in
  ignore (Cluster.add_proxy cluster ~name:"nk2.nakika.net" ~config:diffusion_config ());
  let client = Cluster.add_client cluster ~name:"c1" in
  let req () = Message.request "http://www.example.edu/index.html" in
  (* Warm-up: the first request executes locally (hash not yet known)
     and caches the site stage, making later requests offloadable. *)
  Alcotest.(check string) "warm-up served" "<html>edge</html>"
    (body (fetch_sync cluster ~client ~proxy:p1 (req ())));
  (* Plant nk2 as an irresistibly idle neighbor (pressure below
     anything nk1 can report), incarnation-stamped like gossip would. *)
  let plant () =
    Node.observe_neighbor p1 ~name:"nk2.nakika.net" ~pressure:(-1.0) ~incarnation:1
      ~distance:0.01
  in
  let failures = (Node.config p1).Config.breaker_failures in
  for i = 1 to failures do
    plant ();
    let resp = fetch_sync cluster ~client ~proxy:p1 (req ()) in
    Alcotest.(check int) (Printf.sprintf "timeout fallback %d still serves" i) 200
      resp.Message.status
  done;
  let m = Node.metrics p1 in
  Alcotest.(check int) "every timeout fell back"
    failures
    (Core.Telemetry.Metrics.counter m ~labels:[ ("reason", "timeout") ]
       "diffusion.fallbacks");
  (* The breaker is now open: the next request must not wait out
     another offload timeout, it falls back on the spot. *)
  plant ();
  let resp = fetch_sync cluster ~client ~proxy:p1 (req ()) in
  Alcotest.(check int) "breaker-open fallback serves" 200 resp.Message.status;
  Alcotest.(check bool) "breaker-open fallbacks counted" true
    (Core.Telemetry.Metrics.counter m ~labels:[ ("reason", "breaker-open") ]
       "diffusion.fallbacks"
    >= 1);
  Alcotest.(check int) "nothing was ever offloaded" 0
    (Core.Telemetry.Metrics.counter m
       ~labels:[ ("target", "nk2.nakika.net") ]
       "diffusion.offloads")

(* --- hash miss: the receiver fetches the script it does not know ------- *)

let test_hash_miss_fetches_script () =
  Core.Script.Compile.cache_clear ();
  let cluster = Cluster.create () in
  let origin = transforming_site cluster in
  let p2 = Cluster.add_proxy cluster ~name:"nk2.nakika.net" ~config:diffusion_config () in
  let client = Cluster.add_client cluster ~name:"c1" in
  let send, replies = attach_spy cluster ~host:client in
  let hash = Core.Crypto.Sha256.digest site_script in
  let before = Origin.request_count origin in
  send ~id:0 ~target:"nk2.nakika.net" ~site:"www.example.edu" ~script_hash:hash
    (Message.request "http://www.example.edu/index.html");
  Cluster.run cluster;
  (match reply_for replies 0 with
   | Offload.Executed { response; fuel; _ } ->
     Alcotest.(check string) "fetched script transformed the page" "<html>edge</html>"
       (body response);
     Alcotest.(check bool) "fuel accounted" true (fuel > 0)
   | Offload.Rejected r -> Alcotest.fail ("rejected: " ^ r));
  Alcotest.(check int) "one hash miss recorded" 1
    (Core.Telemetry.Metrics.counter (Node.metrics p2) "diffusion.hash_misses");
  Alcotest.(check bool) "origin was consulted for the script" true
    (Origin.request_count origin > before)

(* --- chaos: target crashes mid-flight, incarnation guards hold --------- *)

let test_chaos_crash_during_offload () =
  (* nk2 executes one offload fine, then crashes just as the next one is
     sent and restarts moments later. The sender times out and serves
     locally (no lost request); the bus's retry then delivers the old
     envelope to the *restarted* nk2, whose incarnation no longer
     matches — it must refuse to execute work addressed to its dead
     self. *)
  let epoch = 1_136_073_600.0 in
  let plan = Core.Faults.Plan.create () in
  Core.Faults.Plan.crash plan ~host:"nk2.nakika.net" ~at:(epoch +. 10.0)
    ~restart:(epoch +. 10.6) ();
  let cluster = Cluster.create ~faults:plan () in
  ignore (transforming_site cluster);
  let p1 = Cluster.add_proxy cluster ~name:"nk1.nakika.net" ~config:diffusion_config () in
  let p2 = Cluster.add_proxy cluster ~name:"nk2.nakika.net" ~config:diffusion_config () in
  let client = Cluster.add_client cluster ~name:"c1" in
  let sim = Cluster.sim cluster in
  let req () = Message.request "http://www.example.edu/index.html" in
  (* Warm-up executes locally and learns the script hash. *)
  ignore (fetch_sync cluster ~client ~proxy:p1 (req ()));
  let plant ~incarnation =
    Node.observe_neighbor p1 ~name:"nk2.nakika.net" ~pressure:(-1.0) ~incarnation
      ~distance:0.01
  in
  (* While nk2 is up: a real offload, executed remotely. *)
  plant ~incarnation:0;
  let resp = fetch_sync cluster ~client ~proxy:p1 (req ()) in
  Alcotest.(check string) "offloaded execution serves" "<html>edge</html>" (body resp);
  Alcotest.(check int) "one offload to nk2" 1
    (Core.Telemetry.Metrics.counter (Node.metrics p1)
       ~labels:[ ("target", "nk2.nakika.net") ]
       "diffusion.offloads");
  (* Now aim a request into the crash window: sent at +10.05 the
     envelope cannot be delivered (host down), the sender times out at
     +10.35 and falls back, and the bus retry hands the stale envelope
     to nk2's next incarnation after +10.6. *)
  Core.Sim.Sim.run ~until:(epoch +. 10.05) sim;
  plant ~incarnation:0;
  let late = ref None in
  Cluster.fetch cluster ~client ~proxy:p1 (req ()) (fun r -> late := Some r);
  Cluster.run cluster;
  (match !late with
   | Some r ->
     Alcotest.(check int) "request survived the crash (served locally)" 200
       r.Message.status
   | None -> Alcotest.fail "request lost in the crash");
  Alcotest.(check bool) "sender fell back on timeout" true
    (Core.Telemetry.Metrics.counter (Node.metrics p1) ~labels:[ ("reason", "timeout") ]
       "diffusion.fallbacks"
    >= 1);
  (* The bus retries (daemon events with exponential backoff) still hold
     the undeliverable envelope; drive the clock far enough for them to
     hand it to nk2's next incarnation and for the refusal to bounce
     back to p1, where the pending entry is long gone. *)
  Cluster.run ~until:(epoch +. 60.0) cluster;
  Alcotest.(check bool) "restarted target refused its dead self's work" true
    (Core.Telemetry.Metrics.counter (Node.metrics p2)
       ~labels:[ ("reason", "incarnation") ]
       "diffusion.rejects"
    >= 1);
  Alcotest.(check bool) "the late refusal was discarded as stale" true
    (Core.Telemetry.Metrics.counter (Node.metrics p1) "diffusion.stale_replies" >= 1);
  (* Determinism: the whole scenario is seeded; re-running it reproduces
     the same counters (the property the chaos matrix relies on). *)
  Alcotest.(check bool) "no offload was double-executed" true
    (Core.Telemetry.Metrics.counter (Node.metrics p1)
       ~labels:[ ("target", "nk2.nakika.net") ]
       "diffusion.offloads"
    = 1)

(* --- receiver-side deadline shed on the offload path ------------------- *)

let test_offload_sheds_expired_deadline () =
  (* A request whose carried budget cannot even survive the bus hop to
     the offload target: the receiver must shed it on arrival (its
     answer would land after the client stopped waiting), the sender
     falls back, and the client is still served. *)
  let cluster = Cluster.create () in
  ignore (transforming_site cluster);
  let p1 = Cluster.add_proxy cluster ~name:"nk1.nakika.net" ~config:diffusion_config () in
  let p2 = Cluster.add_proxy cluster ~name:"nk2.nakika.net" ~config:diffusion_config () in
  let client = Cluster.add_client cluster ~name:"c1" in
  let req () = Message.request "http://www.example.edu/index.html" in
  (* Warm-up: local execution learns the script hash, making the next
     request offloadable. *)
  ignore (fetch_sync cluster ~client ~proxy:p1 (req ()));
  (* The deadline header is relative (remaining seconds), so transit
     time alone cannot expire it: the receiver rebuilds the budget on
     arrival. What kills a doomed offload is the receiver's own queue
     delay, so load nk2 with 2s of CPU backlog, then plant it as an
     attractive neighbor and fire a 10ms-budget request — all inside
     one scheduled event so nk2's next health report cannot overwrite
     the planted pressure before p1 decides to offload. *)
  let sim = Cluster.sim cluster in
  let t0 = Core.Sim.Sim.now sim in
  let result = ref None in
  Core.Sim.Sim.schedule_at sim (t0 +. 0.5) (fun () ->
    Core.Sim.Net.cpu_run (Cluster.net cluster) (Node.host p2) ~seconds:2.0 (fun () -> ());
    Node.observe_neighbor p1 ~name:"nk2.nakika.net" ~pressure:(-1.0) ~incarnation:0
      ~distance:0.01;
    let r = req () in
    Message.set_req_header r Core.Resource.Deadline.header "0.01";
    Cluster.fetch cluster ~client ~proxy:p1 r (fun resp -> result := Some resp));
  Cluster.run ~until:(t0 +. 30.0) cluster;
  (match !result with
   | None -> Alcotest.fail "request lost"
   | Some resp ->
     Alcotest.(check bool) "client still answered" true (resp.Message.status > 0));
  Alcotest.(check bool) "receiver shed the doomed offload" true
    (Core.Telemetry.Metrics.counter (Node.metrics p2)
       ~labels:[ ("at", "offload") ]
       "deadline.expired"
    >= 1);
  Alcotest.(check bool) "shed is a machine-readable reject" true
    (Core.Telemetry.Metrics.counter (Node.metrics p2)
       ~labels:[ ("reason", "deadline-queue") ]
       "diffusion.rejects"
    >= 1);
  Alcotest.(check bool) "sender fell back and served locally" true
    (Core.Telemetry.Metrics.counter (Node.metrics p1) ~labels:[ ("reason", "rejected") ]
       "diffusion.fallbacks"
    >= 1)

let suite =
  [
    QCheck_alcotest.to_alcotest pressure_monotone_prop;
    Alcotest.test_case "pressure: proactive 0.5 crossing at the admission target" `Quick
      test_pressure_crossing;
    Alcotest.test_case "offload round trip: remote = local, fuel/heap identical" `Quick
      test_offload_round_trip_equivalence;
    Alcotest.test_case "fallback: timeouts trip the breaker, nothing is lost" `Quick
      test_fallback_on_breaker_open;
    Alcotest.test_case "hash miss: receiver fetches the script from the origin" `Quick
      test_hash_miss_fetches_script;
    Alcotest.test_case "chaos: crash mid-offload, incarnation guard holds" `Quick
      test_chaos_crash_during_offload;
    Alcotest.test_case "deadline: receiver sheds a doomed offload, sender recovers" `Quick
      test_offload_sheds_expired_deadline;
  ]
