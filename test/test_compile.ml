(* Differential testing of the closure compiler ([Compile]) against the
   reference tree-walker ([Interp]): identical result values, identical
   observable global state, identical raised exceptions, and — the
   resource monitor depends on it — bit-identical fuel and heap
   accounting. Plus the compiled-program cache. *)

open Core.Script

(* Deep, deterministic rendering of a value (and of reachable structure,
   which [Value.to_string] flattens away for objects). *)
let rec dump depth (v : Value.t) =
  if depth > 5 then "..."
  else
    match v with
    | Value.Varr a ->
      "[" ^ String.concat "," (List.map (dump (depth + 1)) (Value.arr_to_list a)) ^ "]"
    | Value.Vobj o ->
      "{"
      ^ String.concat ","
          (List.map (fun k -> k ^ ":" ^ dump (depth + 1) (Value.obj_get o k)) (Value.obj_keys o))
      ^ "}"
    | Value.Vfun _ -> "<fun>"
    | v -> Value.type_name v ^ ":" ^ Value.to_string v

type outcome = {
  result : (string, string) result;
  fuel : int;
  heap : int;
  globals : string;
}

let observed = [ "a"; "b"; "c"; "x"; "y"; "f"; "g" ]

let observe_ctx ctx result =
  let globals =
    String.concat ";"
      (List.map
         (fun n ->
           match Interp.get_global ctx n with
           | Some v -> n ^ "=" ^ dump 0 v
           | None -> n ^ "=?")
         observed)
  in
  { result; fuel = Interp.fuel_used ctx; heap = Interp.heap_used ctx; globals }

let max_fuel = 20_000

let max_heap = 256_000

let run_with runner input =
  let ctx = Interp.create ~max_fuel ~max_heap_bytes:max_heap () in
  Builtins.install ctx;
  let result =
    match runner ctx input with
    | v -> Ok (dump 0 v)
    | exception Value.Script_error m -> Error ("script error: " ^ m)
    | exception Interp.Resource_exhausted m -> Error ("exhausted: " ^ m)
  in
  observe_ctx ctx result

let show_outcome o =
  Printf.sprintf "%s | fuel=%d heap=%d | %s"
    (match o.result with Ok v -> "ok " ^ v | Error e -> "error " ^ e)
    o.fuel o.heap o.globals

let check_differential name source =
  let reference = run_with Interp.run_string source in
  let compiled = run_with (fun ctx s -> Compile.run_string ctx s) source in
  Alcotest.(check string) (name ^ ": identical outcome") (show_outcome reference)
    (show_outcome compiled)

(* --- fixed corpus: the semantics corners the compiler must preserve --- *)

let corpus =
  [
    ("arith loop", {| var a = 0; for (var i = 0; i < 10; i++) { a += i * i; } a |});
    ("string building", {| var c = ""; var b = 0; while (b < 20) { c += "x"; b++; } c.length |});
    ( "closures over slots",
      {| function mk() { var n = 0; return function() { n += 1; return n; }; }
         var f = mk(); f(); f(); f() |} );
    ( "temporal var shadowing",
      (* reading x before its local [var] executes resolves outward *)
      {| var x = 1; function f() { var r = x; var x = 2; return r * 10 + x; } f() |} );
    ( "hoisted functions",
      {| function f() { return g(); function g() { return 7; } } f() |} );
    ( "per-iteration rehoisting",
      {| var a = []; for (var i = 0; i < 3; i++) { function h() { return i; } a.push(h()); }
         a.join(",") |} );
    ( "constructors",
      {| function P(v) { this.v = v; this.twice = function() { return this.v * 2; }; }
         var p = new P(21); p.twice() |} );
    ("globals from functions", {| function f() { b = 5; } var b = 1; f(); b |});
    ("implicit global creation", {| function f() { made = 5; } f(); made |});
    ( "for-in object snapshot",
      {| var y = { k: 1, m: 2 }; var c = ""; for (var k in y) { c += k; y.extra = 9; } c |} );
    ("for-in array", {| var x = [10, 20, 30]; var a = 0; for (var i in x) { a += x[i]; } a |});
    ("break and continue", {| var a = 0; for (var i = 0; i < 10; i++) {
         if (i == 2) { continue; } if (i > 5) { break; } a += i; } a |});
    ("do-while", {| var a = 0; do { a++; } while (a < 5); a |});
    ("try/catch thrown value", {| var r; try { throw { code: 7 }; } catch (e) { r = e.code; } r |});
    ("try/catch runtime error", {| var r; try { nope(); } catch (e) { r = e; } r |});
    ("uncaught throw", {| throw 3; |});
    ("unknown variable", {| undefinedVar + 1 |});
    ("not a function", {| var a = 3; a(); |});
    ("break outside loop", {| break; |});
    ("toplevel return", {| var a = 1; return a + 1; a = 99; |});
    ("compound member assignment", {| var y = { n: 1 }; y.n += 41; y.n |});
    ("compound index assignment", {| var x = [1, 2]; x[1] *= 21; x[1] |});
    ("prefix/postfix", {| var a = 5; var b = a++ * 10 + ++a; b |});
    ("delete", {| var y = { k: 1, m: 2 }; delete y.k; y.k |});
    ("constant folding", {| "a" + "b" + 1 + 2 |});
    ("folded conditional", {| true ? 1 + 2 * 3 : unbound |});
    ("string methods", {| "Hello".toUpperCase().substring(1, 4) |});
    ("array methods", {| var x = ["c", "a", "b"]; x.sort(); x.slice(1).join("-") |});
    ("many-arg builtin", {| "abcdef".replace("cd", "CD") + "abc".charAt(2) |});
    ("math builtins", {| Math.floor(Math.max(1.5, 2.7)) + Math.abs(0 - 3) |});
    ("typeof and equality", {| typeof (1 == "1") + typeof undefined + (null == undefined) |});
    ("bitwise", {| (0xff & 0x0f) | (1 << 4) ^ 3 |});
    ("fuel exhaustion", {| while (true) { } |});
    ("heap exhaustion", {| var c = "x"; while (true) { c = c + c; } |});
    ("deep recursion fuel", {| function f(n) { return f(n + 1); } f(0) |});
    (* Inline-cache behavior: one call site seeing monomorphic, then
       polymorphic, then shape-shifted receivers must stay agreement-
       exact with the tree-walker (which has no caches at all). *)
    ( "ic monomorphic hits",
      {| function get(o) { return o.k; } var y = { k: 2 };
         var a = 0; for (var i = 0; i < 8; i++) { a += get(y); } a |} );
    ( "ic polymorphic shapes through one site",
      {| function get(o) { return o.k; }
         var a = get({ k: 1 }); var b = get({ m: 9, k: 2 }); var c = get({ k: 3, n: 1 });
         a * 100 + b * 10 + c |} );
    ("ic miss on absent property", {| function get(o) { return o.k; } typeof get({ m: 1 }) |});
    ( "ic shape transitions",
      {| var y = {}; y.a = 1; y.b = 2; y.c = 3; y.a * 100 + y.b * 10 + y.c |} );
    ( "ic after delete demotes to dict",
      {| var y = { k: 1, m: 2 }; function get(o) { return o.m; }
         var before = get(y); delete y.k; y.n = 5;
         before * 100 + get(y) * 10 + y.n |} );
    ( "method ic polymorphic",
      {| function call(o) { return o.f(); }
         var a = call({ f: function () { return 1; } });
         var y = { pad: 0, f: function () { return 2; } };
         a * 10 + call(y) |} );
    ( "member-set ic across shapes",
      {| function set(o, v) { o.k = v; return o.k; }
         var y = {}; set(y, 1); set({ k: 0 }, 2) + y.k |} );
    ( "length ic across receiver types",
      {| function len(o) { return o.length; }
         len("abc") * 100 + len([1, 2]) * 10 + len({ length: 7 }) |} );
    ( "shape reuse across literals",
      {| var u = { k: 1, m: 2 }; var v = { k: 3, m: 4 };
         delete u.k; u.m + v.k * 10 + v.m |} );
  ]

let test_corpus () = List.iter (fun (name, src) -> check_differential name src) corpus

(* --- random programs --------------------------------------------------- *)

let pos = { Ast.line = 0; col = 0 }

let mke desc = { Ast.desc; pos }

let mks sdesc = { Ast.sdesc; spos = pos }

let var_pool = [ "a"; "b"; "c"; "x"; "y" ]

let gen_var = QCheck.Gen.oneofl var_pool

let fun_pool = [ "f"; "g" ]

let num i = mke (Ast.Number (float_of_int i))

let gen_expr_n n =
  QCheck.Gen.(
    fix
      (fun self n ->
        let leaf =
          oneof
            [
              map (fun i -> num i) (int_range (-9) 9);
              map (fun v -> mke (Ast.Ident v)) gen_var;
              map (fun b -> mke (Ast.Bool b)) bool;
              oneofl
                [
                  mke (Ast.String "s");
                  mke (Ast.String "tt");
                  mke Ast.Undefined;
                  mke Ast.Null;
                  mke (Ast.Ident "p");
                  mke Ast.This;
                ];
            ]
        in
        if n <= 0 then leaf
        else
          let sub = self (n / 2) in
          oneof
            [
              leaf;
              map2
                (fun op (a, b) -> mke (Ast.Binop (op, a, b)))
                (oneofl
                   Ast.
                     [
                       Add; Sub; Mul; Div; Mod; Lt; Le; Gt; Ge; Eq; Neq; Band; Bor; Bxor; Shl; Shr;
                     ])
                (pair sub sub);
              map2
                (fun l (a, b) -> mke (Ast.Logical (l, a, b)))
                (oneofl [ Ast.And; Ast.Or ])
                (pair sub sub);
              map (fun (c, (t, f)) -> mke (Ast.Cond (c, t, f))) (pair sub (pair sub sub));
              map2 (fun op a -> mke (Ast.Unop (op, a))) (oneofl [ Ast.Not; Ast.Neg; Ast.Bnot; Ast.Typeof ]) sub;
              map (fun es -> mke (Ast.Array_lit es)) (list_size (int_bound 3) sub);
              map (fun e -> mke (Ast.Object_lit [ ("k", e) ])) sub;
              (* second layout: same keys in a different order / extra key —
                 drives call sites polymorphic so the compiled evaluator's
                 inline caches see hits, misses, and shape transitions *)
              map2 (fun e1 e2 -> mke (Ast.Object_lit [ ("m", e1); ("k", e2) ])) sub sub;
              map (fun e -> mke (Ast.Member (e, "m"))) sub;
              map2 (fun e v -> mke (Ast.Assign (Ast.Lmember (e, "k"), None, v))) sub sub;
              map2 (fun e v -> mke (Ast.Assign (Ast.Lmember (e, "m"), Some Ast.Add, v))) sub sub;
              (* method invocation through a member site (invoke-method IC) *)
              map (fun e -> mke (Ast.Call (mke (Ast.Member (e, "k")), []))) sub;
              map2 (fun v e -> mke (Ast.Assign (Ast.Lident v, None, e))) gen_var sub;
              map2 (fun v e -> mke (Ast.Assign (Ast.Lident v, Some Ast.Add, e))) gen_var sub;
              map (fun v -> mke (Ast.Incr (true, Ast.Lident v))) gen_var;
              map (fun v -> mke (Ast.Decr (false, Ast.Lident v))) gen_var;
              map2 (fun e i -> mke (Ast.Index (e, i))) sub sub;
              map (fun e -> mke (Ast.Member (e, "k"))) sub;
              map (fun e -> mke (Ast.Member (e, "length"))) sub;
              map2
                (fun fname args -> mke (Ast.Call (mke (Ast.Ident fname), args)))
                (oneofl fun_pool)
                (list_size (int_bound 2) sub);
              (* immediate lambda: (function (p) { return e; })(arg) *)
              map2
                (fun e arg ->
                  mke
                    (Ast.Call (mke (Ast.Func ([ "p" ], [ mks (Ast.Sreturn (Some e)) ])), [ arg ])))
                sub sub;
              map (fun e -> mke (Ast.Call (mke (Ast.Member (e, "join")), [ mke (Ast.String "-") ]))) sub;
              map (fun e -> mke (Ast.Delete (e, "k"))) sub;
            ])
      n)

let gen_stmt =
  QCheck.Gen.(
    sized
    @@ fix (fun self n ->
           let expr_g = gen_expr_n (min (max n 1) 8) in
           let block = list_size (int_bound 2) (self (n / 3)) in
           let sexpr = map (fun e -> mks (Ast.Sexpr e)) expr_g in
           if n <= 0 then sexpr
           else
             oneof
               [
                 sexpr;
                 map2 (fun v e -> mks (Ast.Svar [ (v, Some e) ])) gen_var expr_g;
                 map (fun v -> mks (Ast.Svar [ (v, None) ])) gen_var;
                 map
                   (fun (c, (a, b)) -> mks (Ast.Sif (c, a, b)))
                   (pair expr_g (pair block block));
                 (* guaranteed-decreasing while *)
                 map2
                   (fun v body ->
                     mks
                       (Ast.Swhile
                          ( mke (Ast.Binop (Ast.Gt, mke (Ast.Ident v), num 0)),
                            mks
                              (Ast.Sexpr (mke (Ast.Assign (Ast.Lident v, Some Ast.Sub, num 1))))
                            :: body )))
                   gen_var block;
                 map2
                   (fun v body ->
                     mks
                       (Ast.Sfor
                          ( Some (mks (Ast.Svar [ (v, Some (num 0)) ])),
                            Some (mke (Ast.Binop (Ast.Lt, mke (Ast.Ident v), num 3))),
                            Some (mke (Ast.Incr (false, Ast.Lident v))),
                            body )))
                   gen_var block;
                 map
                   (fun (v, (e, body)) -> mks (Ast.Sfor_in (v, e, body)))
                   (pair gen_var (pair expr_g block));
                 map2 (fun b h -> mks (Ast.Stry (b, "e", h))) block block;
                 map (fun e -> mks (Ast.Sthrow e)) expr_g;
                 map (fun b -> mks (Ast.Sblock b)) block;
                 map (fun e -> mks (Ast.Sreturn (Some e))) expr_g;
                 map2
                   (fun fname body ->
                     mks
                       (Ast.Sfunc
                          ( fname,
                            [ "p"; "q" ],
                            body @ [ mks (Ast.Sreturn (Some (mke (Ast.Ident "p")))) ] )))
                   (oneofl fun_pool) block;
               ]))

let prelude =
  [
    mks
      (Ast.Svar
         [
           ("a", Some (num 1));
           ("b", Some (num 2));
           ("c", Some (mke (Ast.String "c")));
           ("x", Some (mke (Ast.Array_lit [ num 1; num 2 ])));
           ("y", Some (mke (Ast.Object_lit [ ("k", num 3) ])));
         ]);
  ]

let gen_program = QCheck.Gen.(list_size (int_range 1 6) gen_stmt)

let differential_prop =
  QCheck.Test.make
    ~name:"compiled evaluator agrees with tree-walker (value, globals, fuel, heap, errors)"
    ~count:500
    (QCheck.make ~print:Pretty.program gen_program)
    (fun stmts ->
      let prog = prelude @ stmts in
      let reference = run_with Interp.run prog in
      let compiled = run_with (fun ctx p -> Compile.run ctx (Compile.compile p)) prog in
      reference = compiled
      || QCheck.Test.fail_reportf "tree-walker: %s\ncompiled:    %s" (show_outcome reference)
           (show_outcome compiled))

(* --- the compiled-program cache ---------------------------------------- *)

let test_cache_hits () =
  Compile.cache_clear ();
  let before = Compile.cache_stats () in
  let source = "var total = 0; for (var i = 0; i < 5; i++) { total += i; } total" in
  let run () =
    let ctx = Interp.create () in
    Builtins.install ctx;
    Value.to_number (Compile.run_string ctx source)
  in
  Alcotest.(check (float 0.)) "first run" 10.0 (run ());
  Alcotest.(check (float 0.)) "second run (cached, fresh ctx)" 10.0 (run ());
  let after = Compile.cache_stats () in
  Alcotest.(check int) "one miss" 1 (after.Compile.misses - before.Compile.misses);
  Alcotest.(check int) "one hit" 1 (after.Compile.hits - before.Compile.hits)

let test_stage_sharing_reports_hit () =
  (* Two stages (two simulated nodes) loading the same site script must
     share one compilation. *)
  Compile.cache_clear ();
  let source =
    {| var p = new Policy(); p.onRequest = function() { }; p.register(); |}
  in
  let host = Core.Vocab.Hostcall.stub () in
  let outcomes = ref [] in
  let build () =
    match
      Core.Pipeline.Stage.of_script ~url:"http://site.org/nakika.js" ~host
        ~on_compile_cache:(fun o -> outcomes := o :: !outcomes)
        ~source ()
    with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e
  in
  build ();
  build ();
  Alcotest.(check bool) "second load is a cache hit" true (List.mem `Hit !outcomes);
  Alcotest.(check bool) "first load was a miss" true (List.mem `Miss !outcomes)

let test_cache_lru_eviction () =
  (* With a capacity of 2, loading a third distinct body must evict
     exactly the least-recently-used entry — not flush the table. *)
  Compile.cache_clear ();
  Compile.set_cache_capacity 2;
  let load source =
    let ctx = Interp.create () in
    Builtins.install ctx;
    ignore (Compile.run_string ctx source)
  in
  let a = "var a = 1; a" and b = "var b = 2; b" and c = "var c = 3; c" in
  let before = Compile.cache_stats () in
  load a;
  load b;
  (* Touch [a] so [b] is the LRU victim. *)
  load a;
  load c;
  let after = Compile.cache_stats () in
  Alcotest.(check int) "one eviction" 1 (after.Compile.evictions - before.Compile.evictions);
  Alcotest.(check int) "table stays at capacity" 2 after.Compile.entries;
  let hash s = Core.Crypto.Sha256.digest s in
  Alcotest.(check bool) "a survived (recently used)" true
    (Compile.find_cached_by_hash (hash a) <> None);
  Alcotest.(check bool) "b evicted (least recently used)" true
    (Compile.find_cached_by_hash (hash b) = None);
  Alcotest.(check bool) "c resident" true (Compile.find_cached_by_hash (hash c) <> None);
  (* Reloading the victim is a fresh miss, not an error. *)
  let miss_before = (Compile.cache_stats ()).Compile.misses in
  load b;
  Alcotest.(check int) "victim recompiles as a miss" 1
    ((Compile.cache_stats ()).Compile.misses - miss_before);
  Compile.set_cache_capacity 1024;
  Compile.cache_clear ()

let test_compiled_handler_apply () =
  (* Event handlers produced by compiled scripts are plain function
     values; [Interp.apply] must invoke them (the pipeline does). *)
  let ctx = Interp.create () in
  Builtins.install ctx;
  ignore (Compile.run_string ctx "function h(n) { return n * 2 + 1; }");
  match Interp.get_global ctx "h" with
  | Some h ->
    Alcotest.(check (float 0.)) "applied" 85.0
      (Value.to_number (Interp.apply ctx h [ Value.Vnum 42.0 ]))
  | None -> Alcotest.fail "handler not defined"

let test_fuel_parity_on_handler_apply () =
  (* Calling the same function must charge the same fuel under both
     evaluators. *)
  let source = "function h(n) { var s = 0; for (var i = 0; i < n; i++) { s += i; } return s; }" in
  let measure loader =
    let ctx = Interp.create () in
    Builtins.install ctx;
    ignore (loader ctx source);
    let h = Option.get (Interp.get_global ctx "h") in
    let before = Interp.fuel_used ctx in
    let v = Value.to_number (Interp.apply ctx h [ Value.Vnum 50.0 ]) in
    (v, Interp.fuel_used ctx - before)
  in
  let v_ref, fuel_ref = measure Interp.run_string in
  let v_cmp, fuel_cmp = measure (fun ctx s -> Compile.run_string ctx s) in
  Alcotest.(check (float 0.)) "same value" v_ref v_cmp;
  Alcotest.(check int) "same fuel per invocation" fuel_ref fuel_cmp

(* --- the persistent program registry ----------------------------------- *)

let registry_dir = Filename.concat (Filename.get_temp_dir_name ()) "nakika-test-registry"

let with_registry f =
  (* Fresh directory, registry enabled only for the duration: the
     registry is process-wide state and the default must stay off for
     every other test in this binary. *)
  if Sys.file_exists registry_dir then
    Array.iter
      (fun name -> Sys.remove (Filename.concat registry_dir name))
      (Sys.readdir registry_dir);
  Registry.set_dir (Some registry_dir);
  Compile.cache_clear ();
  Fun.protect
    ~finally:(fun () ->
      Registry.set_dir None;
      Compile.cache_clear ())
    f

let run_source source =
  let ctx = Interp.create () in
  Builtins.install ctx;
  Value.to_number (Compile.run_string ctx source)

let entry_file source =
  match Registry.entry_path ~hash:(Core.Crypto.Sha256.digest source) with
  | Some p -> p
  | None -> Alcotest.fail "registry disabled"

let read_entry path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_entry path bytes =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc bytes)

let test_registry_restart_skips_parse () =
  with_registry (fun () ->
      let source = "var rr = 6 * 7; rr" in
      Alcotest.(check (float 0.)) "first run (parses, stores)" 42.0 (run_source source);
      Alcotest.(check bool) "entry on disk" true (Sys.file_exists (entry_file source));
      (* Simulated restart: drop the in-memory cache, keep the disk. *)
      Compile.cache_clear ();
      let hits0 = (Registry.stats ()).Registry.hits in
      Alcotest.(check (float 0.)) "after restart" 42.0 (run_source source);
      Alcotest.(check int) "served from the registry, not the parser" (hits0 + 1)
        (Registry.stats ()).Registry.hits)

let test_registry_version_mismatch_falls_back () =
  with_registry (fun () ->
      let source = "var rv = 1 + 2; rv" in
      Alcotest.(check (float 0.)) "seed" 3.0 (run_source source);
      let path = entry_file source in
      let raw = read_entry path in
      (* A future/foreign format version: same length, different magic. *)
      write_entry path ("NKREG9\n" ^ String.sub raw 7 (String.length raw - 7));
      Compile.cache_clear ();
      let s0 = Registry.stats () in
      Alcotest.(check (float 0.)) "falls back to parsing" 3.0 (run_source source);
      let s1 = Registry.stats () in
      Alcotest.(check int) "entry rejected" (s0.Registry.rejects + 1) s1.Registry.rejects;
      Alcotest.(check int) "fallback re-stored a fresh entry" (s0.Registry.stores + 1)
        s1.Registry.stores;
      (* The re-written entry must be valid again. *)
      Compile.cache_clear ();
      Alcotest.(check (float 0.)) "healed" 3.0 (run_source source);
      Alcotest.(check int) "healed entry loads" (s1.Registry.hits + 1)
        (Registry.stats ()).Registry.hits)

let test_registry_corrupt_entries_fall_back () =
  with_registry (fun () ->
      (* Checksum failure: one flipped payload byte. *)
      let source = "var rc = 10 - 1; rc" in
      Alcotest.(check (float 0.)) "seed" 9.0 (run_source source);
      let path = entry_file source in
      let raw = read_entry path in
      let b = Bytes.of_string raw in
      let last = Bytes.length b - 1 in
      Bytes.set b last (Char.chr (Char.code (Bytes.get b last) lxor 0xff));
      write_entry path (Bytes.to_string b);
      Compile.cache_clear ();
      let s0 = Registry.stats () in
      Alcotest.(check (float 0.)) "flipped bit: parses instead" 9.0 (run_source source);
      Alcotest.(check int) "flipped bit rejected" (s0.Registry.rejects + 1)
        (Registry.stats ()).Registry.rejects;
      (* Truncation: too short to even hold the header. *)
      let source2 = "var rt = 4 * 4; rt" in
      Alcotest.(check (float 0.)) "seed 2" 16.0 (run_source source2);
      let path2 = entry_file source2 in
      write_entry path2 (String.sub (read_entry path2) 0 5);
      Compile.cache_clear ();
      let s1 = Registry.stats () in
      Alcotest.(check (float 0.)) "truncated: parses instead" 16.0 (run_source source2);
      Alcotest.(check int) "truncated rejected" (s1.Registry.rejects + 1)
        (Registry.stats ()).Registry.rejects)

let test_registry_preload_and_hash_resolution () =
  with_registry (fun () ->
      let a = "var pa = 5; pa" and b = "var pb = 7; pb" in
      Alcotest.(check (float 0.)) "seed a" 5.0 (run_source a);
      Alcotest.(check (float 0.)) "seed b" 7.0 (run_source b);
      (* Restart, then warm the cache the way node start does. *)
      Compile.cache_clear ();
      Alcotest.(check int) "preload compiles every disk entry" 2 (Compile.preload_registry ());
      Alcotest.(check int) "second preload is idempotent" 0 (Compile.preload_registry ());
      let hash = Core.Crypto.Sha256.digest a in
      Alcotest.(check bool) "hash-only resolution finds the preloaded program" true
        (Compile.find_cached_by_hash hash <> None);
      (* A diffusion-style hash lookup with a cold cache resolves from
         disk without ever having the source. *)
      Compile.cache_clear ();
      Alcotest.(check bool) "hash-only resolution falls through to disk" true
        (Compile.find_cached_by_hash hash <> None))

let test_registry_disabled_is_inert () =
  Alcotest.(check bool) "disabled by default" true (Registry.dir () = None);
  Alcotest.(check bool) "no entries when disabled" true (Registry.entries () = []);
  Alcotest.(check bool) "no paths when disabled" true
    (Registry.entry_path ~hash:(Core.Crypto.Sha256.digest "x") = None);
  Alcotest.(check bool) "load is a no-op when disabled" true
    (Registry.load ~hash:(Core.Crypto.Sha256.digest "x") = None)

let suite =
  [
    Alcotest.test_case "fixed corpus: compiled = tree-walker" `Quick test_corpus;
    QCheck_alcotest.to_alcotest differential_prop;
    Alcotest.test_case "program cache: one compile per distinct body" `Quick test_cache_hits;
    Alcotest.test_case "program cache: stages share compilations" `Quick
      test_stage_sharing_reports_hit;
    Alcotest.test_case "program cache: bounded LRU eviction" `Quick test_cache_lru_eviction;
    Alcotest.test_case "compiled handlers respond to apply" `Quick test_compiled_handler_apply;
    Alcotest.test_case "fuel parity on handler invocation" `Quick test_fuel_parity_on_handler_apply;
    Alcotest.test_case "registry: restart resolves from disk, no parse" `Quick
      test_registry_restart_skips_parse;
    Alcotest.test_case "registry: version mismatch falls back to parse" `Quick
      test_registry_version_mismatch_falls_back;
    Alcotest.test_case "registry: corrupt/truncated entries fall back" `Quick
      test_registry_corrupt_entries_fall_back;
    Alcotest.test_case "registry: preload and hash-only resolution" `Quick
      test_registry_preload_and_hash_resolution;
    Alcotest.test_case "registry: disabled by default and inert" `Quick
      test_registry_disabled_is_inert;
  ]
