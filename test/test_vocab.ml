(* Vocabularies: the NKI image codec, XML engine, and the script-facing
   Request/Response, ImageTransformer, Xml, Regex, System, Cache,
   HardState, Crypto and fetchResource globals. *)

open Core.Vocab
open Core.Script

let test_image_encode_decode_raw () =
  let img = Image.synthesize ~width:32 ~height:24 ~seed:1 in
  match Image.decode (Image.encode img Image.Raw) with
  | Ok (img', Image.Raw) ->
    Alcotest.(check int) "width" 32 img'.Image.width;
    Alcotest.(check int) "height" 24 img'.Image.height;
    Alcotest.(check bytes) "pixels" img.Image.pixels img'.Image.pixels
  | _ -> Alcotest.fail "decode failed"

let test_image_encode_decode_rle () =
  let img = Image.synthesize ~width:64 ~height:48 ~seed:2 in
  match Image.decode (Image.encode img Image.Rle) with
  | Ok (img', Image.Rle) -> Alcotest.(check bytes) "lossless" img.Image.pixels img'.Image.pixels
  | _ -> Alcotest.fail "decode failed"

let test_image_dimensions_peek () =
  let img = Image.synthesize ~width:352 ~height:416 ~seed:3 in
  Alcotest.(check (option (pair int int))) "header peek" (Some (352, 416))
    (Image.dimensions (Image.encode img Image.Rle));
  Alcotest.(check (option (pair int int))) "garbage" None (Image.dimensions "not an image")

let test_image_scale () =
  let img = Image.synthesize ~width:100 ~height:60 ~seed:4 in
  let scaled = Image.scale img ~width:50 ~height:30 in
  Alcotest.(check int) "width" 50 scaled.Image.width;
  Alcotest.(check int) "height" 30 scaled.Image.height;
  Alcotest.(check int) "pixel count" 1500 (Bytes.length scaled.Image.pixels);
  (* Identity scale preserves the image. *)
  let same = Image.scale img ~width:100 ~height:60 in
  Alcotest.(check bytes) "identity" img.Image.pixels same.Image.pixels

let test_image_decode_errors () =
  List.iter
    (fun s ->
      match Image.decode s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected decode error")
    [ ""; "NKI1"; "XXXX\x00\x10\x00\x10\x00"; "NKI1\x00\x10\x00\x10\x00short" ]

let test_rle_roundtrip () =
  let cases = [ ""; "a"; "aaaa"; "abab"; String.make 300 'x'; "mixed aaa bbb c" ] in
  List.iter
    (fun s ->
      match Image.rle_decompress (Image.rle_compress s) with
      | Ok s' -> Alcotest.(check string) "roundtrip" s s'
      | Error e -> Alcotest.fail e)
    cases

let rle_roundtrip_prop =
  QCheck.Test.make ~name:"rle: compress/decompress roundtrip" ~count:200
    QCheck.(string_of_size (QCheck.Gen.int_bound 500))
    (fun s -> Image.rle_decompress (Image.rle_compress s) = Ok s)

(* The pre-optimization codec (Buffer-based, byte-at-a-time), kept
   verbatim as the behavioral reference: the zero-copy implementation in
   [Image] must match it bit-for-bit — wire bytes, decoded pixels, and
   error messages (the resource monitor and the differential suite both
   observe errors, so even failure text is part of the contract). *)
module Ref_image = struct
  let magic = "NKI1"

  let rle_compress s =
    let buf = Buffer.create (String.length s / 2) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      let c = s.[!i] in
      let run = ref 1 in
      while !i + !run < n && s.[!i + !run] = c && !run < 255 do
        incr run
      done;
      Buffer.add_char buf (Char.chr !run);
      Buffer.add_char buf c;
      i := !i + !run
    done;
    Buffer.contents buf

  let rle_decompress s =
    if String.length s mod 2 <> 0 then Error "RLE payload has odd length"
    else begin
      let buf = Buffer.create (String.length s * 2) in
      let rec go i =
        if i >= String.length s then Ok (Buffer.contents buf)
        else begin
          let run = Char.code s.[i] in
          if run = 0 then Error "zero-length RLE run"
          else begin
            for _ = 1 to run do
              Buffer.add_char buf s.[i + 1]
            done;
            go (i + 2)
          end
        end
      in
      go 0
    end

  let encode (t : Image.t) format =
    let buf = Buffer.create (16 + Bytes.length t.Image.pixels) in
    Buffer.add_string buf magic;
    Buffer.add_char buf (Char.chr ((t.Image.width lsr 8) land 0xFF));
    Buffer.add_char buf (Char.chr (t.Image.width land 0xFF));
    Buffer.add_char buf (Char.chr ((t.Image.height lsr 8) land 0xFF));
    Buffer.add_char buf (Char.chr (t.Image.height land 0xFF));
    (match format with
    | Image.Raw ->
      Buffer.add_char buf '\x00';
      Buffer.add_bytes buf t.Image.pixels
    | Image.Rle ->
      Buffer.add_char buf '\x01';
      Buffer.add_string buf (rle_compress (Bytes.to_string t.Image.pixels)));
    Buffer.contents buf

  let decode s =
    if String.length s < 9 then Error "truncated NKI image"
    else if String.sub s 0 4 <> magic then Error "bad NKI magic"
    else begin
      let w = (Char.code s.[4] lsl 8) lor Char.code s.[5] in
      let h = (Char.code s.[6] lsl 8) lor Char.code s.[7] in
      if w <= 0 || h <= 0 then Error "bad NKI dimensions"
      else begin
        let payload = String.sub s 9 (String.length s - 9) in
        match s.[8] with
        | '\x00' ->
          if String.length payload <> w * h then Error "raw payload size mismatch"
          else Ok ({ Image.width = w; height = h; pixels = Bytes.of_string payload }, Image.Raw)
        | '\x01' -> (
          match rle_decompress payload with
          | Error e -> Error e
          | Ok raw ->
            if String.length raw <> w * h then Error "RLE payload size mismatch"
            else Ok ({ Image.width = w; height = h; pixels = Bytes.of_string raw }, Image.Rle))
        | c -> Error (Printf.sprintf "unknown NKI format byte %d" (Char.code c))
      end
    end

  let scale (t : Image.t) ~width ~height =
    let pixels = Bytes.create (width * height) in
    for y = 0 to height - 1 do
      let sy = y * t.Image.height / height in
      for x = 0 to width - 1 do
        let sx = x * t.Image.width / width in
        Bytes.set pixels ((y * width) + x) (Bytes.get t.Image.pixels ((sy * t.Image.width) + sx))
      done
    done;
    { Image.width; height; pixels }
end

let same_decode a b =
  match (a, b) with
  | Ok ((i1 : Image.t), f1), Ok ((i2 : Image.t), f2) ->
    f1 = f2 && i1.Image.width = i2.Image.width && i1.Image.height = i2.Image.height
    && i1.Image.pixels = i2.Image.pixels
  | Error e1, Error e2 -> (e1 : string) = e2
  | _ -> false

let transcode_parity_prop =
  (* The full Fig. 2 pipeline (decode -> scale -> re-encode) through the
     optimized codec, compared bit-for-bit with the reference. *)
  QCheck.Test.make ~name:"image: transcode pipeline bit-identical to reference codec" ~count:150
    QCheck.(
      quad (int_range 1 80) (int_range 1 60) (int_bound 999)
        (pair (pair (int_range 1 80) (int_range 1 60)) (pair bool bool)))
    (fun (w, h, seed, ((tw, th), (in_rle, out_rle))) ->
      let img = Image.synthesize ~width:w ~height:h ~seed in
      let fmt_in = if in_rle then Image.Rle else Image.Raw in
      let fmt_out = if out_rle then Image.Rle else Image.Raw in
      let wire = Image.encode img fmt_in in
      wire = Ref_image.encode img fmt_in
      && same_decode (Image.decode wire) (Ref_image.decode wire)
      &&
      match Image.decode wire with
      | Error e -> QCheck.Test.fail_reportf "decode of own encode failed: %s" e
      | Ok (decoded, _) ->
        let scaled = Image.scale decoded ~width:tw ~height:th in
        let ref_scaled = Ref_image.scale decoded ~width:tw ~height:th in
        scaled.Image.pixels = ref_scaled.Image.pixels
        && Image.encode scaled fmt_out = Ref_image.encode ref_scaled fmt_out)

let decode_parity_prop =
  (* Adversarial wire bytes: mutate a valid encoding (bit flip,
     truncation, zeroed run length, bogus format byte) and require the
     two decoders to agree exactly — same pixels or the same error
     string, with the same precedence between failure modes. *)
  QCheck.Test.make ~name:"image: decode of corrupted wire agrees with reference codec" ~count:300
    QCheck.(
      quad (int_range 1 48) (int_range 1 32) (int_bound 999)
        (pair (int_bound 3) (pair (int_bound 99_999) (int_bound 255))))
    (fun (w, h, seed, (kind, (pos_seed, byte))) ->
      let img = Image.synthesize ~width:w ~height:h ~seed in
      let wire = Image.encode img Image.Rle in
      let n = String.length wire in
      let mutated =
        let b = Bytes.of_string wire in
        match kind with
        | 0 ->
          (* arbitrary byte flip anywhere, header included *)
          let i = pos_seed mod n in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor byte));
          Bytes.to_string b
        | 1 -> String.sub wire 0 (pos_seed mod (n + 1))
        | 2 when n > 9 ->
          (* zero a run-length byte: even payload offset *)
          let i = 9 + (pos_seed mod (n - 9)) / 2 * 2 in
          if i < n then Bytes.set b i '\x00';
          Bytes.to_string b
        | _ ->
          Bytes.set b 8 (Char.chr byte);
          Bytes.to_string b
      in
      same_decode (Image.decode mutated) (Ref_image.decode mutated)
      || QCheck.Test.fail_reportf "decoders disagree on %S" mutated)

let test_image_mime () =
  Alcotest.(check bool) "jpeg is rle" true (Image.format_of_mime "image/jpeg" = Some Image.Rle);
  Alcotest.(check bool) "nki raw" true (Image.format_of_mime "image/nki" = Some Image.Raw);
  Alcotest.(check bool) "unknown" true (Image.format_of_mime "text/html" = None)

let test_xml_parse_serialize () =
  let src = "<a x=\"1\"><b>text</b><c/></a>" in
  let node = Xml.parse_exn src in
  Alcotest.(check string) "roundtrip" src (Xml.serialize node)

let test_xml_entities () =
  let node = Xml.parse_exn "<p>a &lt;b&gt; &amp; c</p>" in
  Alcotest.(check string) "unescaped text" "a <b> & c" (Xml.text_content node);
  Alcotest.(check string) "re-escaped" "<p>a &lt;b&gt; &amp; c</p>" (Xml.serialize node)

let test_xml_prolog_and_comments () =
  let node = Xml.parse_exn "<?xml version=\"1.0\"?><!-- hi --><root><!-- inner -->x</root>" in
  Alcotest.(check string) "text" "x" (Xml.text_content node)

let test_xml_errors () =
  List.iter
    (fun s ->
      match Xml.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse error for %S" s)
    [ ""; "<a>"; "<a></b>"; "<a><b></a></b>"; "text only"; "<a></a><b></b>"; "<a x=1></a>" ]

let test_xml_find_all () =
  let node = Xml.parse_exn "<r><s><p>1</p></s><p>2</p></r>" in
  Alcotest.(check int) "two paras" 2 (List.length (Xml.find_all node "p"))

let test_xml_transform () =
  let sheet = [ { Xml.tag = "lecture"; html_tag = "article"; html_class = Some "lec" } ] in
  let node = Xml.parse_exn "<lecture><unknown>t</unknown></lecture>" in
  let html = Xml.to_html sheet node in
  Alcotest.(check bool) "rule applied" true
    (Core.Util.Strutil.contains_sub html ~sub:"<article class=\"lec\">");
  Alcotest.(check bool) "default rule" true
    (Core.Util.Strutil.contains_sub html ~sub:"<div class=\"unknown\">");
  Alcotest.(check bool) "shell" true (Core.Util.Strutil.starts_with ~prefix:"<html><body>" html)


let test_xml_cdata () =
  let node = Xml.parse_exn "<doc><![CDATA[raw <tags> & ampersands]]></doc>" in
  Alcotest.(check string) "verbatim text" "raw <tags> & ampersands" (Xml.text_content node);
  (* Serialization re-escapes it as ordinary text. *)
  Alcotest.(check string) "re-escaped" "<doc>raw &lt;tags&gt; &amp; ampersands</doc>"
    (Xml.serialize node);
  (match Xml.parse "<doc><![CDATA[unterminated</doc>" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unterminated CDATA should fail")

(* --- script-facing vocabularies ---------------------------------------- *)

let make_ctx ?(host = Hostcall.stub ()) () =
  let ctx = Interp.create () in
  Platform_v.install_all host ctx;
  Eval_v.install ctx;
  ctx

let run ctx src = Interp.run_string ctx src

let test_request_global () =
  let ctx = make_ctx () in
  let req =
    Core.Http.Message.request
      ~headers:[ ("User-Agent", "TestAgent"); ("Cookie", "sid=xyz") ]
      ~client:{ Core.Http.Ip.ip = Core.Http.Ip.of_string_exn "10.1.2.3"; hostname = None }
      "http://a.org/path?k=v"
  in
  Http_v.install_request ctx req;
  Alcotest.(check string) "url" "http://a.org/path?k=v" (Value.to_string (run ctx "Request.url"));
  Alcotest.(check string) "method" "GET" (Value.to_string (run ctx "Request.method"));
  Alcotest.(check string) "clientIP" "10.1.2.3" (Value.to_string (run ctx "Request.clientIP"));
  Alcotest.(check string) "header" "TestAgent"
    (Value.to_string (run ctx "Request.header(\"user-agent\")"));
  Alcotest.(check string) "cookie" "xyz" (Value.to_string (run ctx "Request.cookie(\"sid\")"));
  Alcotest.(check string) "query" "v" (Value.to_string (run ctx "Request.query(\"k\")"));
  Alcotest.(check bool) "missing header is null" true
    (run ctx "Request.header(\"nope\")" = Value.Vnull)

let test_request_mutation () =
  let ctx = make_ctx () in
  let req = Core.Http.Message.request "http://a.org/old" in
  Http_v.install_request ctx req;
  ignore (run ctx "Request.setUrl(\"http://b.org/new\"); Request.setHeader(\"X\", \"1\")");
  Alcotest.(check string) "url rewritten" "b.org" (Core.Http.Message.host req);
  Alcotest.(check (option string)) "header set" (Some "1")
    (Core.Http.Message.req_header req "X");
  Alcotest.(check string) "script sees new url" "http://b.org/new"
    (Value.to_string (run ctx "Request.url"))

let test_request_terminate () =
  let ctx = make_ctx () in
  Http_v.install_request ctx (Core.Http.Message.request "http://a.org/");
  match run ctx "Request.terminate(401)" with
  | exception Http_v.Terminate_request resp ->
    Alcotest.(check int) "401" 401 resp.Core.Http.Message.status
  | _ -> Alcotest.fail "expected Terminate_request"

let test_request_redirect () =
  let ctx = make_ctx () in
  Http_v.install_request ctx (Core.Http.Message.request "http://a.org/");
  match run ctx "Request.redirect(\"http://elsewhere.org/\")" with
  | exception Http_v.Terminate_request resp ->
    Alcotest.(check int) "302" 302 resp.Core.Http.Message.status;
    Alcotest.(check (option string)) "location" (Some "http://elsewhere.org/")
      (Core.Http.Message.resp_header resp "Location")
  | _ -> Alcotest.fail "expected redirect"

let test_response_read_write () =
  let ctx = make_ctx () in
  let resp =
    Core.Http.Message.response ~headers:[ ("Content-Type", "text/html") ] ~body:"hello world" ()
  in
  let sink = Http_v.install_response ctx resp in
  ignore
    (run ctx
       {| var body = "", c;
          while ((c = Response.read()) != null) { body += c; }
          Response.write(body.toUpperCase()); |});
  Http_v.apply_writes sink resp;
  Alcotest.(check string) "rewritten" "HELLO WORLD"
    (Core.Http.Body.to_string resp.Core.Http.Message.resp_body);
  Alcotest.(check (option string)) "content-length updated" (Some "11")
    (Core.Http.Message.resp_header resp "Content-Length")

let test_response_no_write_keeps_body () =
  let ctx = make_ctx () in
  let resp = Core.Http.Message.response ~body:"original" () in
  let sink = Http_v.install_response ctx resp in
  ignore (run ctx "var c = Response.read();");
  Http_v.apply_writes sink resp;
  Alcotest.(check string) "unchanged" "original"
    (Core.Http.Body.to_string resp.Core.Http.Message.resp_body)

let test_response_headers_and_status () =
  let ctx = make_ctx () in
  let resp = Core.Http.Message.response ~headers:[ ("Content-Type", "image/nki") ] ~body:"x" () in
  ignore (Http_v.install_response ctx resp);
  Alcotest.(check string) "contentType" "image/nki" (Value.to_string (run ctx "Response.contentType"));
  ignore (run ctx "Response.setHeader(\"Content-Type\", \"image/jpeg\"); Response.setStatus(201)");
  Alcotest.(check (option string)) "header" (Some "image/jpeg")
    (Core.Http.Message.content_type resp);
  Alcotest.(check int) "status" 201 resp.Core.Http.Message.status;
  Alcotest.(check string) "snapshot refreshed" "image/jpeg"
    (Value.to_string (run ctx "Response.contentType"))

let test_figure2_end_to_end () =
  (* The full Fig. 2 handler against a real oversized NKI image. *)
  let ctx = make_ctx () in
  let img = Image.synthesize ~width:352 ~height:416 ~seed:9 in
  let body = Image.encode img Image.Rle in
  let resp =
    Core.Http.Message.response ~headers:[ ("Content-Type", "image/jpeg") ] ~body ()
  in
  Http_v.install_request ctx (Core.Http.Message.request "http://imgs.org/pic.jpg");
  let sink = Http_v.install_response ctx resp in
  ignore
    (run ctx
       {|
var buff = null, body = new ByteArray();
while ((buff = Response.read()) != null) { body.append(buff); }
var type = ImageTransformer.type(Response.contentType);
var dim = ImageTransformer.dimensions(body, type);
if (dim.x > 176 || dim.y > 208) {
  var img;
  if (dim.x / 176 > dim.y / 208) {
    img = ImageTransformer.transform(body, type, "jpeg", 176, dim.y / dim.x * 208);
  } else {
    img = ImageTransformer.transform(body, type, "jpeg", dim.x / dim.y * 176, 208);
  }
  Response.setHeader("Content-Type", "image/jpeg");
  Response.setHeader("Content-Length", img.length);
  Response.write(img);
}
|});
  Http_v.apply_writes sink resp;
  let out = Core.Http.Body.to_string resp.Core.Http.Message.resp_body in
  (match Image.dimensions out with
   | Some (w, h) ->
     Alcotest.(check bool) "fits phone screen" true (w <= 176 && h <= 208);
     Alcotest.(check bool) "nontrivial" true (w > 0 && h > 0)
   | None -> Alcotest.fail "output is not NKI");
  Alcotest.(check bool) "smaller than input" true (String.length out < String.length body)

let test_system_vocab () =
  let base = Hostcall.stub () in
  let host =
    { base with
      Hostcall.now = (fun () -> 123.5);
      is_local = (fun ip -> ip = "10.0.0.1");
      congestion = (fun r -> if r = "cpu" then 0.75 else 0.0);
    }
  in
  let ctx = make_ctx ~host () in
  Alcotest.(check (float 1e-9)) "time" 123.5 (Value.to_number (run ctx "System.time()"));
  Alcotest.(check bool) "local" true (Value.truthy (run ctx "System.isLocal(\"10.0.0.1\")"));
  Alcotest.(check bool) "not local" false (Value.truthy (run ctx "System.isLocal(\"8.8.8.8\")"));
  Alcotest.(check (float 1e-9)) "congestion" 0.75 (Value.to_number (run ctx "System.congestion(\"cpu\")"))

let test_hardstate_vocab () =
  let ctx = make_ctx () in
  ignore (run ctx "HardState.put(\"user:1\", \"alice\")");
  Alcotest.(check string) "get" "alice" (Value.to_string (run ctx "HardState.get(\"user:1\")"));
  Alcotest.(check bool) "missing is null" true (run ctx "HardState.get(\"nope\")" = Value.Vnull);
  ignore (run ctx "HardState.put(\"user:2\", \"bob\")");
  Alcotest.(check (float 1e-9)) "keys" 2.0 (Value.to_number (run ctx "HardState.keys(\"user:\").length"));
  ignore (run ctx "HardState.remove(\"user:1\")");
  Alcotest.(check bool) "removed" true (run ctx "HardState.get(\"user:1\")" = Value.Vnull)

let test_fetch_vocab () =
  let fetched = ref [] in
  let base = Hostcall.stub () in
  let host =
    { base with
      Hostcall.fetch =
        (fun req ->
          fetched := Core.Http.Url.to_string req.Core.Http.Message.url :: !fetched;
          Core.Http.Message.response
            ~headers:[ ("Content-Type", "text/plain") ]
            ~body:"fragment" ());
    }
  in
  let ctx = make_ctx ~host () in
  Alcotest.(check string) "body" "fragment"
    (Value.to_string (run ctx "fetchResource(\"http://x.org/frag\").body"));
  Alcotest.(check (float 1e-9)) "status" 200.0
    (Value.to_number (run ctx "fetchResource(\"http://x.org/frag\").status"));
  Alcotest.(check bool) "host saw requests" true (List.length !fetched = 2)

let test_crypto_vocab () =
  let ctx = make_ctx () in
  Alcotest.(check string) "sha256"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Value.to_string (run ctx "Crypto.sha256(\"abc\")"))

let test_regex_vocab () =
  let ctx = make_ctx () in
  Alcotest.(check bool) "test" true (Value.truthy (run ctx "Regex.test(\"\\\\d+\", \"abc123\")"));
  Alcotest.(check string) "find" "123" (Value.to_string (run ctx "Regex.find(\"\\\\d+\", \"abc123\")"));
  Alcotest.(check string) "replace" "abcN"
    (Value.to_string (run ctx "Regex.replace(\"\\\\d+\", \"N\", \"abc123\")"));
  Alcotest.(check (float 1e-9)) "split" 3.0
    (Value.to_number (run ctx "Regex.split(\",\", \"a,b,c\").length"))

let test_xml_vocab_script () =
  let ctx = make_ctx () in
  Alcotest.(check string) "parse name" "root"
    (Value.to_string (run ctx "Xml.parse(\"<root><c>t</c></root>\").name"));
  Alcotest.(check string) "text" "t"
    (Value.to_string (run ctx "Xml.text(Xml.parse(\"<root><c>t</c></root>\"))"));
  Alcotest.(check bool) "bad xml is null" true (run ctx "Xml.parse(\"<broken\")" = Value.Vnull);
  let html = Value.to_string (run ctx "Xml.toHtml(\"<doc><p>x</p></doc>\", { doc: \"main\", p: \"p\" })") in
  Alcotest.(check bool) "transform" true (Core.Util.Strutil.contains_sub html ~sub:"<main>")

let test_eval_vocab () =
  let ctx = make_ctx () in
  Alcotest.(check (float 1e-9)) "eval" 7.0 (Value.to_number (run ctx "evalScript(\"3 + 4\")"));
  (* evalScript shares the sandbox: globals persist. *)
  ignore (run ctx "evalScript(\"var shared = 5;\")");
  Alcotest.(check (float 1e-9)) "shared global" 5.0 (Value.to_number (run ctx "shared"))

let test_cache_vocab () =
  let table : (string, Core.Http.Message.response) Hashtbl.t = Hashtbl.create 4 in
  let base = Hostcall.stub () in
  let host =
    { base with
      Hostcall.cache_lookup = (fun key -> Hashtbl.find_opt table key);
      cache_store = (fun ~key ~ttl:_ resp -> Hashtbl.replace table key resp);
    }
  in
  let ctx = make_ctx ~host () in
  Alcotest.(check bool) "miss" true (run ctx "Cache.lookup(\"k\")" = Value.Vnull);
  ignore (run ctx "Cache.store(\"k\", \"text/plain\", \"cached!\", 60)");
  Alcotest.(check string) "hit" "cached!" (Value.to_string (run ctx "Cache.lookup(\"k\").body"))

let suite =
  [
    Alcotest.test_case "image: raw roundtrip" `Quick test_image_encode_decode_raw;
    Alcotest.test_case "image: rle roundtrip" `Quick test_image_encode_decode_rle;
    Alcotest.test_case "image: header-only dimensions" `Quick test_image_dimensions_peek;
    Alcotest.test_case "image: scaling" `Quick test_image_scale;
    Alcotest.test_case "image: decode errors" `Quick test_image_decode_errors;
    Alcotest.test_case "image: rle cases" `Quick test_rle_roundtrip;
    QCheck_alcotest.to_alcotest rle_roundtrip_prop;
    QCheck_alcotest.to_alcotest transcode_parity_prop;
    QCheck_alcotest.to_alcotest decode_parity_prop;
    Alcotest.test_case "image: mime mapping" `Quick test_image_mime;
    Alcotest.test_case "xml: parse/serialize roundtrip" `Quick test_xml_parse_serialize;
    Alcotest.test_case "xml: entities" `Quick test_xml_entities;
    Alcotest.test_case "xml: prolog and comments" `Quick test_xml_prolog_and_comments;
    Alcotest.test_case "xml: CDATA sections" `Quick test_xml_cdata;
    Alcotest.test_case "xml: malformed documents" `Quick test_xml_errors;
    Alcotest.test_case "xml: find_all" `Quick test_xml_find_all;
    Alcotest.test_case "xml: stylesheet transform" `Quick test_xml_transform;
    Alcotest.test_case "Request global" `Quick test_request_global;
    Alcotest.test_case "Request mutation writes through" `Quick test_request_mutation;
    Alcotest.test_case "Request.terminate (Fig. 5)" `Quick test_request_terminate;
    Alcotest.test_case "Request.redirect" `Quick test_request_redirect;
    Alcotest.test_case "Response read/write cycle" `Quick test_response_read_write;
    Alcotest.test_case "Response without writes keeps body" `Quick
      test_response_no_write_keeps_body;
    Alcotest.test_case "Response headers and status" `Quick test_response_headers_and_status;
    Alcotest.test_case "Fig. 2 transcoding end to end" `Quick test_figure2_end_to_end;
    Alcotest.test_case "System vocabulary" `Quick test_system_vocab;
    Alcotest.test_case "HardState vocabulary" `Quick test_hardstate_vocab;
    Alcotest.test_case "fetchResource" `Quick test_fetch_vocab;
    Alcotest.test_case "Crypto vocabulary" `Quick test_crypto_vocab;
    Alcotest.test_case "Regex vocabulary" `Quick test_regex_vocab;
    Alcotest.test_case "Xml vocabulary" `Quick test_xml_vocab_script;
    Alcotest.test_case "evalScript" `Quick test_eval_vocab;
    Alcotest.test_case "Cache vocabulary" `Quick test_cache_vocab;
  ]
