(* Congestion-based resource control (Fig. 6): accounting semantics,
   throttling proportional to contribution, top-offender termination. *)

open Core.Resource

let test_renewable_classification () =
  Alcotest.(check bool) "cpu" true (Resource.is_renewable Resource.Cpu);
  Alcotest.(check bool) "memory" true (Resource.is_renewable Resource.Memory);
  Alcotest.(check bool) "bandwidth" true (Resource.is_renewable Resource.Bandwidth);
  Alcotest.(check bool) "running time" false (Resource.is_renewable Resource.Running_time);
  Alcotest.(check bool) "bytes" false (Resource.is_renewable Resource.Bytes_transferred)

let test_charge_accumulates () =
  let a = Accounting.create () in
  Accounting.charge a ~site:"s" Resource.Cpu 1.0;
  Accounting.charge a ~site:"s" Resource.Cpu 2.0;
  Alcotest.(check (float 1e-9)) "interval sum" 3.0
    (Accounting.interval_consumption a ~site:"s" Resource.Cpu);
  Alcotest.(check (float 1e-9)) "total" 3.0 (Accounting.total_interval a Resource.Cpu)

let test_renewable_only_counts_under_congestion () =
  let a = Accounting.create ~alpha:1.0 () in
  Accounting.charge a ~site:"s" Resource.Cpu 5.0;
  Accounting.close_resource_interval a Resource.Cpu ~congested:false;
  Alcotest.(check (float 1e-9)) "uncongested renewable discarded" 0.0
    (Accounting.usage a ~site:"s" Resource.Cpu);
  Accounting.charge a ~site:"s" Resource.Cpu 5.0;
  Accounting.close_resource_interval a Resource.Cpu ~congested:true;
  Alcotest.(check (float 1e-9)) "congested renewable counted" 5.0
    (Accounting.usage a ~site:"s" Resource.Cpu)

let test_nonrenewable_always_counts () =
  let a = Accounting.create ~alpha:1.0 () in
  Accounting.charge a ~site:"s" Resource.Running_time 2.0;
  Accounting.close_resource_interval a Resource.Running_time ~congested:false;
  Alcotest.(check (float 1e-9)) "counted without congestion" 2.0
    (Accounting.usage a ~site:"s" Resource.Running_time)

let test_interval_resets () =
  let a = Accounting.create () in
  Accounting.charge a ~site:"s" Resource.Cpu 5.0;
  Accounting.close_resource_interval a Resource.Cpu ~congested:true;
  Alcotest.(check (float 1e-9)) "reset" 0.0
    (Accounting.interval_consumption a ~site:"s" Resource.Cpu)

let test_usage_is_weighted_average () =
  let a = Accounting.create ~alpha:0.5 () in
  Accounting.charge a ~site:"s" Resource.Cpu 10.0;
  Accounting.close_resource_interval a Resource.Cpu ~congested:true;
  Accounting.charge a ~site:"s" Resource.Cpu 20.0;
  Accounting.close_resource_interval a Resource.Cpu ~congested:true;
  Alcotest.(check (float 1e-9)) "ewma" 15.0 (Accounting.usage a ~site:"s" Resource.Cpu)

let test_penalization_decays () =
  (* §3.2: "allowing scripts to ... recover from past penalization". *)
  let a = Accounting.create ~alpha:0.5 () in
  Accounting.charge a ~site:"s" Resource.Cpu 100.0;
  Accounting.close_resource_interval a Resource.Cpu ~congested:true;
  for _ = 1 to 10 do
    Accounting.close_resource_interval a Resource.Cpu ~congested:false
  done;
  Alcotest.(check bool) "decayed" true (Accounting.usage a ~site:"s" Resource.Cpu < 0.2)

let test_contribution_shares () =
  let a = Accounting.create ~alpha:1.0 () in
  Accounting.charge a ~site:"big" Resource.Cpu 9.0;
  Accounting.charge a ~site:"small" Resource.Cpu 1.0;
  Accounting.close_resource_interval a Resource.Cpu ~congested:true;
  Alcotest.(check (float 1e-9)) "big share" 0.9 (Accounting.contribution a ~site:"big" Resource.Cpu);
  Alcotest.(check (float 1e-9)) "small share" 0.1
    (Accounting.contribution a ~site:"small" Resource.Cpu);
  Alcotest.(check (float 1e-9)) "unknown site" 0.0
    (Accounting.contribution a ~site:"nobody" Resource.Cpu)

let test_active_sites_and_forget () =
  let a = Accounting.create () in
  Accounting.charge a ~site:"b" Resource.Cpu 1.0;
  Accounting.charge a ~site:"a" Resource.Cpu 1.0;
  Alcotest.(check (list string)) "sorted" [ "a"; "b" ] (Accounting.active_sites a);
  Accounting.forget a ~site:"a";
  Alcotest.(check (list string)) "forgotten" [ "b" ] (Accounting.active_sites a)

(* --- the CONTROL algorithm -------------------------------------------- *)

type harness = {
  accounting : Accounting.t;
  monitor : Monitor.t;
  congested : (Resource.t, bool) Hashtbl.t;
  throttled : (string * float) list ref;
  unthrottled : int ref;
  killed : string list ref;
}

let make_harness () =
  let accounting = Accounting.create ~alpha:1.0 () in
  let congested = Hashtbl.create 4 in
  let throttled = ref [] in
  let unthrottled = ref 0 in
  let killed = ref [] in
  let monitor =
    Monitor.create ~accounting
      ~is_congested:(fun ~final:_ r -> Option.value (Hashtbl.find_opt congested r) ~default:false)
      ~throttle:(fun ~site ~fraction ~resource:_ -> throttled := (site, fraction) :: !throttled)
      ~unthrottle:(fun _ -> incr unthrottled)
      ~terminate:(fun ~site -> killed := site :: !killed)
      ()
  in
  { accounting; monitor; congested; throttled; unthrottled; killed }

let test_control_idle_when_clear () =
  let h = make_harness () in
  Accounting.charge h.accounting ~site:"s" Resource.Cpu 100.0;
  Alcotest.(check bool) "clear" true (Monitor.begin_control h.monitor Resource.Cpu = `Clear);
  Alcotest.(check bool) "no throttles" true (!(h.throttled) = []);
  Alcotest.(check bool) "unthrottled at finish" true
    (Monitor.finish_control h.monitor Resource.Cpu = `Unthrottled);
  Alcotest.(check bool) "nobody killed" true (!(h.killed) = [])

let test_control_throttles_proportionally () =
  let h = make_harness () in
  Accounting.charge h.accounting ~site:"hog" Resource.Cpu 3.0;
  Accounting.charge h.accounting ~site:"meek" Resource.Cpu 1.0;
  Hashtbl.replace h.congested Resource.Cpu true;
  (match Monitor.begin_control h.monitor Resource.Cpu with
   | `Congested fractions ->
     Alcotest.(check (float 1e-9)) "hog fraction" 0.75 (List.assoc "hog" fractions);
     Alcotest.(check (float 1e-9)) "meek fraction" 0.25 (List.assoc "meek" fractions)
   | `Clear -> Alcotest.fail "expected congestion");
  Alcotest.(check int) "both throttled" 2 (List.length !(h.throttled))

let test_control_kills_top_offender_if_congestion_persists () =
  let h = make_harness () in
  Accounting.charge h.accounting ~site:"hog" Resource.Cpu 9.0;
  Accounting.charge h.accounting ~site:"meek" Resource.Cpu 1.0;
  Hashtbl.replace h.congested Resource.Cpu true;
  ignore (Monitor.begin_control h.monitor Resource.Cpu);
  (* congestion persists through the timeout *)
  (match Monitor.finish_control h.monitor Resource.Cpu with
   | `Terminated site -> Alcotest.(check string) "largest contributor dies" "hog" site
   | `Unthrottled -> Alcotest.fail "expected termination");
  Alcotest.(check (list string)) "kill callback" [ "hog" ] !(h.killed);
  Alcotest.(check int) "termination counted" 1 (Monitor.terminations h.monitor)

let test_control_unthrottles_if_congestion_clears () =
  let h = make_harness () in
  Accounting.charge h.accounting ~site:"s" Resource.Cpu 5.0;
  Hashtbl.replace h.congested Resource.Cpu true;
  ignore (Monitor.begin_control h.monitor Resource.Cpu);
  Hashtbl.replace h.congested Resource.Cpu false (* throttling took effect *);
  Alcotest.(check bool) "unthrottled" true
    (Monitor.finish_control h.monitor Resource.Cpu = `Unthrottled);
  Alcotest.(check bool) "nobody killed" true (!(h.killed) = []);
  Alcotest.(check bool) "unthrottle callback ran" true (!(h.unthrottled) >= 1)

let test_control_no_ghost_kill () =
  (* finish_control with no prior begin ranks nobody. *)
  let h = make_harness () in
  Hashtbl.replace h.congested Resource.Cpu true;
  Alcotest.(check bool) "no pending queue" true
    (Monitor.finish_control h.monitor Resource.Cpu = `Unthrottled)

let test_control_per_resource_isolation () =
  let h = make_harness () in
  Accounting.charge h.accounting ~site:"s" Resource.Cpu 1.0;
  Accounting.charge h.accounting ~site:"s" Resource.Memory 1.0;
  Hashtbl.replace h.congested Resource.Cpu true;
  ignore (Monitor.begin_control h.monitor Resource.Cpu);
  ignore (Monitor.begin_control h.monitor Resource.Memory);
  (* only cpu was congested; memory usage (renewable) folded as zero *)
  Alcotest.(check bool) "cpu counted" true (Accounting.usage h.accounting ~site:"s" Resource.Cpu > 0.0);
  Alcotest.(check (float 1e-9)) "memory not counted" 0.0
    (Accounting.usage h.accounting ~site:"s" Resource.Memory)

let test_control_unthrottle_event () =
  (* Restoration is auditable: lifting the clamp emits one structured
     [unthrottle] event (and counter tick) per previously throttled
     site, symmetric with [throttle]/[terminate]. *)
  let accounting = Accounting.create ~alpha:1.0 () in
  let congested = ref true in
  let events = Core.Telemetry.Events.create () in
  let metrics = Core.Telemetry.Metrics.create () in
  let monitor =
    Monitor.create ~accounting
      ~is_congested:(fun ~final:_ _ -> !congested)
      ~throttle:(fun ~site:_ ~fraction:_ ~resource:_ -> ())
      ~unthrottle:(fun _ -> ())
      ~terminate:(fun ~site:_ -> ())
      ~events ~metrics ()
  in
  Accounting.charge accounting ~site:"hog" Resource.Cpu 3.0;
  Accounting.charge accounting ~site:"meek" Resource.Cpu 1.0;
  ignore (Monitor.begin_control monitor Resource.Cpu);
  congested := false;
  Alcotest.(check bool) "unthrottled" true
    (Monitor.finish_control monitor Resource.Cpu = `Unthrottled);
  let unthrottles =
    List.filter
      (fun (e : Core.Telemetry.Events.event) -> e.Core.Telemetry.Events.name = "unthrottle")
      (Core.Telemetry.Events.to_list events)
  in
  Alcotest.(check int) "one event per throttled site" 2 (List.length unthrottles);
  let sites =
    List.sort compare
      (List.filter_map
         (fun (e : Core.Telemetry.Events.event) ->
           List.assoc_opt "site" e.Core.Telemetry.Events.attrs)
         unthrottles)
  in
  Alcotest.(check (list string)) "sites named" [ "hog"; "meek" ] sites;
  List.iter
    (fun (e : Core.Telemetry.Events.event) ->
      Alcotest.(check (option string))
        "resource attr" (Some "cpu")
        (List.assoc_opt "resource" e.Core.Telemetry.Events.attrs))
    unthrottles;
  Alcotest.(check int) "counter ticked" 2
    (Core.Telemetry.Metrics.counter_total metrics "monitor.unthrottles")

let test_control_no_unthrottle_event_when_idle () =
  (* A control cycle that never throttled anyone has nothing to restore:
     no spurious events. *)
  let h = make_harness () in
  let events = Core.Telemetry.Events.create () in
  let monitor =
    Monitor.create ~accounting:h.accounting
      ~is_congested:(fun ~final:_ _ -> false)
      ~throttle:(fun ~site:_ ~fraction:_ ~resource:_ -> ())
      ~unthrottle:(fun _ -> ())
      ~terminate:(fun ~site:_ -> ())
      ~events ()
  in
  ignore (Monitor.begin_control monitor Resource.Cpu);
  ignore (Monitor.finish_control monitor Resource.Cpu);
  Alcotest.(check int) "no events" 0 (Core.Telemetry.Events.count events)

(* --- accounting edge cases ------------------------------------------- *)

let test_close_interval_zero_sites () =
  (* Fig. 6's UPDATE with nothing running: a no-op, not a crash. *)
  let a = Accounting.create () in
  Accounting.close_interval a ~congested:(fun _ -> true);
  Accounting.close_interval a ~congested:(fun _ -> false);
  Alcotest.(check (list string)) "still no sites" [] (Accounting.active_sites a);
  Alcotest.(check (float 1e-9)) "no total" 0.0 (Accounting.total_interval a Resource.Cpu)

let test_contribution_with_zero_total () =
  (* A site whose averaged usage is 0 (and a node whose total is 0)
     contributes 0, not NaN. *)
  let a = Accounting.create ~alpha:1.0 () in
  Alcotest.(check (float 1e-9)) "empty accounting" 0.0
    (Accounting.contribution a ~site:"s" Resource.Cpu);
  (* Fold an uncongested interval: renewable usage stays 0 but the site
     is known — the division by a zero total must still guard. *)
  Accounting.charge a ~site:"s" Resource.Cpu 5.0;
  Accounting.close_resource_interval a Resource.Cpu ~congested:false;
  let c = Accounting.contribution a ~site:"s" Resource.Cpu in
  Alcotest.(check (float 1e-9)) "zero total guarded" 0.0 c;
  Alcotest.(check bool) "not nan" false (Float.is_nan c)

(* --- admission control ------------------------------------------------ *)

let make_admission ?(target = 0.1) ?(interval = 0.5) ?(capacity = 8) ?metrics () =
  let clock = ref 0.0 in
  let adm = Admission.create ~target ~interval ~capacity ~clock:(fun () -> !clock) ?metrics () in
  (clock, adm)

let test_admission_admits_when_idle () =
  let _clock, adm = make_admission () in
  (match Admission.offer adm ~site:"s" ~queue_delay:0.0 with
   | Admission.Admitted -> ()
   | Admission.Shed _ -> Alcotest.fail "idle node must admit");
  Alcotest.(check int) "slot occupied" 1 (Admission.queue_length adm);
  Admission.release adm ~site:"s";
  Alcotest.(check int) "slot freed" 0 (Admission.queue_length adm)

let test_admission_codel_sheds_after_interval () =
  let clock, adm = make_admission ~target:0.1 ~interval:0.5 () in
  (* Delay above target, but not yet for a full interval: admitted. *)
  (match Admission.offer adm ~site:"s" ~queue_delay:0.3 with
   | Admission.Admitted -> ()
   | Admission.Shed _ -> Alcotest.fail "burst must not shed immediately");
  Admission.release adm ~site:"s";
  clock := 0.6;
  (* Still above target a full interval later: shedding starts. *)
  (match Admission.offer adm ~site:"s" ~queue_delay:0.3 with
   | Admission.Shed { reason; retry_after } ->
     Alcotest.(check string) "reason" "overload" reason;
     Alcotest.(check bool) "retry hint positive" true (retry_after > 0.0)
   | Admission.Admitted -> Alcotest.fail "sustained overload must shed");
  Alcotest.(check bool) "shedding state" true (Admission.shedding adm);
  (* Hysteresis: the first arrival that sees delay back under the
     target flips the controller out of shedding. *)
  clock := 1.0;
  (match Admission.offer adm ~site:"s" ~queue_delay:0.05 with
   | Admission.Admitted -> ()
   | Admission.Shed _ -> Alcotest.fail "recovered delay must admit");
  Alcotest.(check bool) "shedding cleared" false (Admission.shedding adm)

let test_admission_queue_full () =
  let metrics = Core.Telemetry.Metrics.create () in
  let _clock, adm = make_admission ~capacity:4 ~metrics () in
  for _ = 1 to 4 do
    match Admission.offer adm ~site:"s" ~queue_delay:0.0 with
    | Admission.Admitted -> ()
    | Admission.Shed _ -> Alcotest.fail "under capacity must admit"
  done;
  (match Admission.offer adm ~site:"s" ~queue_delay:0.0 with
   | Admission.Shed { reason; _ } -> Alcotest.(check string) "reason" "queue-full" reason
   | Admission.Admitted -> Alcotest.fail "full queue must shed");
  Alcotest.(check int) "shed counted" 1 (Admission.sheds adm);
  Alcotest.(check int) "shed metric labeled" 1
    (Core.Telemetry.Metrics.counter metrics
       ~labels:[ ("site", "s"); ("reason", "queue-full") ]
       "admission.sheds");
  (* Releasing a slot reopens the queue. *)
  Admission.release adm ~site:"s";
  match Admission.offer adm ~site:"s" ~queue_delay:0.0 with
  | Admission.Admitted -> ()
  | Admission.Shed _ -> Alcotest.fail "freed slot must admit"

let test_admission_fair_share () =
  (* Once the queue is contended, a site already over [capacity /
     active sites] is shed even though the node is not in delay
     overload — one hot site cannot starve the rest. *)
  let _clock, adm = make_admission ~capacity:8 () in
  (* hog takes 4 slots, meek takes 1: queue is half full. *)
  for _ = 1 to 4 do
    ignore (Admission.offer adm ~site:"hog" ~queue_delay:0.0)
  done;
  ignore (Admission.offer adm ~site:"meek" ~queue_delay:0.0);
  Alcotest.(check int) "hog occupancy" 4 (Admission.site_occupancy adm ~site:"hog");
  (* hog wants a 5th slot: fair share with 2 active sites is 4. *)
  (match Admission.offer adm ~site:"hog" ~queue_delay:0.0 with
   | Admission.Shed { reason; _ } -> Alcotest.(check string) "reason" "fair-share" reason
   | Admission.Admitted -> Alcotest.fail "hog over its share must shed");
  (* meek still gets in. *)
  match Admission.offer adm ~site:"meek" ~queue_delay:0.0 with
  | Admission.Admitted -> ()
  | Admission.Shed _ -> Alcotest.fail "meek under its share must admit"

let test_admission_shed_rate_window () =
  let clock, adm = make_admission ~capacity:2 () in
  ignore (Admission.offer adm ~site:"s" ~queue_delay:0.0);
  ignore (Admission.offer adm ~site:"s" ~queue_delay:0.0);
  ignore (Admission.offer adm ~site:"s" ~queue_delay:0.0);
  ignore (Admission.offer adm ~site:"s" ~queue_delay:0.0);
  (* 2 admitted + 2 shed in the current window. *)
  Alcotest.(check (float 1e-9)) "rate in window" 0.5 (Admission.shed_rate adm);
  (* After the window rolls with no arrivals, the last completed
     window's rate is still reported (the redirector reads this). *)
  clock := 6.0;
  Alcotest.(check (float 1e-9)) "rate carries over" 0.5 (Admission.shed_rate adm)

let test_admission_reset () =
  let _clock, adm = make_admission ~capacity:2 () in
  ignore (Admission.offer adm ~site:"s" ~queue_delay:0.0);
  ignore (Admission.offer adm ~site:"s" ~queue_delay:0.0);
  Admission.reset adm;
  Alcotest.(check int) "occupancy cleared" 0 (Admission.queue_length adm);
  match Admission.offer adm ~site:"s" ~queue_delay:0.0 with
  | Admission.Admitted -> ()
  | Admission.Shed _ -> Alcotest.fail "reset queue must admit"

(* --- circuit breaker -------------------------------------------------- *)

let make_breaker ?(failure_threshold = 3) ?(cooldown = 5.0) ?(max_cooldown = 20.0) ?metrics () =
  let clock = ref 0.0 in
  let b =
    Breaker.create ~name:"origin:test" ~failure_threshold ~cooldown ~max_cooldown
      ~clock:(fun () -> !clock)
      ?metrics ()
  in
  (clock, b)

let test_breaker_trips_on_consecutive_failures () =
  let metrics = Core.Telemetry.Metrics.create () in
  let _clock, b = make_breaker ~metrics () in
  Alcotest.(check bool) "starts closed" true (Breaker.state b = Breaker.Closed);
  Breaker.failure b;
  Breaker.failure b;
  Alcotest.(check bool) "two failures stay closed" true (Breaker.state b = Breaker.Closed);
  Breaker.failure b;
  Alcotest.(check bool) "third failure trips" true (Breaker.state b = Breaker.Open);
  (match Breaker.acquire b with
   | `Reject retry -> Alcotest.(check bool) "retry hint" true (retry > 0.0)
   | `Proceed -> Alcotest.fail "open breaker must reject");
  Alcotest.(check int) "opens counted" 1 (Breaker.opens b);
  Alcotest.(check int) "opens metric labeled" 1
    (Core.Telemetry.Metrics.counter metrics
       ~labels:[ ("upstream", "origin:test") ]
       "breaker.opens")

let test_breaker_success_resets_consecutive () =
  let _clock, b = make_breaker () in
  Breaker.failure b;
  Breaker.failure b;
  Breaker.success b;
  Breaker.failure b;
  Breaker.failure b;
  Alcotest.(check bool) "success broke the streak" true (Breaker.state b = Breaker.Closed)

let test_breaker_half_open_single_probe () =
  let clock, b = make_breaker ~cooldown:5.0 () in
  for _ = 1 to 3 do Breaker.failure b done;
  clock := 5.0;
  (* Cooldown elapsed: exactly one probe is admitted. *)
  (match Breaker.acquire b with
   | `Proceed -> ()
   | `Reject _ -> Alcotest.fail "cooldown elapsed: probe must proceed");
  Alcotest.(check bool) "half-open" true (Breaker.state b = Breaker.Half_open);
  (match Breaker.acquire b with
   | `Reject _ -> ()
   | `Proceed -> Alcotest.fail "second concurrent probe must be rejected");
  Alcotest.(check int) "one probe granted" 1 (Breaker.probes b);
  (* The probe succeeds: closed, and the backoff is forgiven. *)
  Breaker.success b;
  Alcotest.(check bool) "closed again" true (Breaker.state b = Breaker.Closed);
  match Breaker.acquire b with
  | `Proceed -> ()
  | `Reject _ -> Alcotest.fail "closed breaker must admit"

let test_breaker_probe_failure_doubles_cooldown () =
  let clock, b = make_breaker ~cooldown:5.0 ~max_cooldown:20.0 () in
  for _ = 1 to 3 do Breaker.failure b done;
  (* trip 1: open until t=5 *)
  clock := 5.0;
  (match Breaker.acquire b with `Proceed -> () | `Reject _ -> Alcotest.fail "probe 1");
  Breaker.failure b;
  (* probe failed: open again with a doubled (10 s) cooldown *)
  (match Breaker.acquire b with
   | `Reject retry -> Alcotest.(check (float 1e-6)) "doubled" 10.0 retry
   | `Proceed -> Alcotest.fail "must re-open");
  clock := 15.0;
  (match Breaker.acquire b with `Proceed -> () | `Reject _ -> Alcotest.fail "probe 2");
  Breaker.failure b;
  (* 20 s now, and capped there on every subsequent trip *)
  (match Breaker.acquire b with
   | `Reject retry -> Alcotest.(check (float 1e-6)) "capped" 20.0 retry
   | `Proceed -> Alcotest.fail "must re-open");
  clock := 35.0;
  (match Breaker.acquire b with `Proceed -> () | `Reject _ -> Alcotest.fail "probe 3");
  (* A successful probe resets the backoff to the base cooldown. *)
  Breaker.success b;
  for _ = 1 to 3 do Breaker.failure b done;
  match Breaker.acquire b with
  | `Reject retry -> Alcotest.(check (float 1e-6)) "backoff forgiven" 5.0 retry
  | `Proceed -> Alcotest.fail "must be open"

let test_breaker_error_rate_trip () =
  let clock = ref 0.0 in
  let b =
    Breaker.create ~name:"origin:rate" ~failure_threshold:100 ~error_rate:0.5
      ~min_samples:8 ~window:10.0
      ~clock:(fun () -> !clock)
      ()
  in
  (* Alternate success/failure: the consecutive counter never reaches
     the threshold, but the windowed rate does once enough samples
     accumulate. *)
  for _ = 1 to 4 do
    Breaker.success b;
    Breaker.failure b
  done;
  Alcotest.(check bool) "50% over 8 samples trips" true (Breaker.state b = Breaker.Open)

(* --- quarantine ------------------------------------------------------- *)

let make_quarantine ?(base = 30.0) ?(max_window = 240.0) ?(decay = 60.0) ?metrics () =
  let clock = ref 0.0 in
  let q = Quarantine.create ~base ~max_window ~decay ~clock:(fun () -> !clock) ?metrics () in
  (clock, q)

let test_quarantine_ban_expires () =
  let clock, q = make_quarantine ~base:30.0 () in
  Alcotest.(check bool) "clean site unbanned" false (Quarantine.is_banned q ~site:"s");
  let w = Quarantine.punish q ~site:"s" in
  Alcotest.(check (float 1e-9)) "first offense gets the base window" 30.0 w;
  Alcotest.(check bool) "banned" true (Quarantine.is_banned q ~site:"s");
  Alcotest.(check (float 1e-9)) "remaining" 30.0 (Quarantine.remaining q ~site:"s");
  clock := 30.0;
  Alcotest.(check bool) "expired" false (Quarantine.is_banned q ~site:"s");
  Alcotest.(check (float 1e-9)) "nothing remaining" 0.0 (Quarantine.remaining q ~site:"s")

let test_quarantine_escalates_and_caps () =
  let metrics = Core.Telemetry.Metrics.create () in
  let clock, q = make_quarantine ~base:30.0 ~max_window:240.0 ~decay:0.0 ~metrics () in
  let w1 = Quarantine.punish q ~site:"s" in
  clock := !clock +. w1;
  let w2 = Quarantine.punish q ~site:"s" in
  clock := !clock +. w2;
  let w3 = Quarantine.punish q ~site:"s" in
  Alcotest.(check (float 1e-9)) "doubles" 60.0 w2;
  Alcotest.(check (float 1e-9)) "doubles again" 120.0 w3;
  clock := !clock +. w3;
  let w4 = Quarantine.punish q ~site:"s" in
  clock := !clock +. w4;
  let w5 = Quarantine.punish q ~site:"s" in
  Alcotest.(check (float 1e-9)) "reaches the cap" 240.0 w4;
  Alcotest.(check (float 1e-9)) "stays at the cap" 240.0 w5;
  Alcotest.(check int) "bans counted" 5 (Quarantine.bans q);
  Alcotest.(check int) "ban metric labeled" 5
    (Core.Telemetry.Metrics.counter metrics ~labels:[ ("site", "s") ] "quarantine.bans")

let test_quarantine_strikes_decay () =
  let clock, q = make_quarantine ~base:30.0 ~decay:60.0 () in
  ignore (Quarantine.punish q ~site:"s");
  ignore (Quarantine.punish q ~site:"s");
  Alcotest.(check int) "two strikes" 2 (Quarantine.strikes q ~site:"s");
  (* The second ban expires at t=60 (the 30 s window was granted at t=0
     against 1 prior strike... the ban runs 60 s); good behaviour only
     counts after expiry. Two decay periods later, both strikes are
     gone and the next offense gets the base window again. *)
  clock := Quarantine.remaining q ~site:"s" +. 120.0;
  Alcotest.(check int) "strikes decayed" 0 (Quarantine.strikes q ~site:"s");
  let w = Quarantine.punish q ~site:"s" in
  Alcotest.(check (float 1e-9)) "recovered to the base window" 30.0 w

let test_quarantine_active_and_forgive () =
  let clock, q = make_quarantine ~base:30.0 () in
  ignore (Quarantine.punish q ~site:"b");
  ignore (Quarantine.punish q ~site:"a");
  Alcotest.(check (list string)) "active sorted" [ "a"; "b" ]
    (List.map fst (Quarantine.active q));
  Quarantine.forgive q ~site:"a";
  Alcotest.(check (list string)) "forgiven" [ "b" ] (List.map fst (Quarantine.active q));
  clock := 31.0;
  Alcotest.(check (list string)) "expired bans drop out" [] (List.map fst (Quarantine.active q))

let admission_slots_balance_prop =
  QCheck.Test.make ~name:"admission: queue length equals admits minus releases" ~count:200
    QCheck.(list (pair (int_range 0 3) bool))
    (fun ops ->
      let _clock, adm = make_admission ~capacity:1000 () in
      let outstanding = ref 0 in
      List.iter
        (fun (site_idx, release_after) ->
          let site = Printf.sprintf "s%d" site_idx in
          (match Admission.offer adm ~site ~queue_delay:0.0 with
           | Admission.Admitted -> incr outstanding
           | Admission.Shed _ -> ());
          if release_after && !outstanding > 0 then begin
            Admission.release adm ~site;
            decr outstanding
          end)
        ops;
      Admission.queue_length adm = !outstanding)

let throttle_fractions_sum_to_one_prop =
  QCheck.Test.make ~name:"throttle fractions over active sites sum to 1" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 10) (float_range 0.1 50.0))
    (fun loads ->
      let h = make_harness () in
      List.iteri
        (fun i load ->
          Accounting.charge h.accounting ~site:(Printf.sprintf "s%d" i) Resource.Cpu load)
        loads;
      Hashtbl.replace h.congested Resource.Cpu true;
      match Monitor.begin_control h.monitor Resource.Cpu with
      | `Congested fractions ->
        let total = List.fold_left (fun acc (_, f) -> acc +. f) 0.0 fractions in
        Float.abs (total -. 1.0) < 1e-6
      | `Clear -> false)

(* --- tail tolerance: deadlines, hedging, retry budgets ------------- *)

let test_deadline_mint_and_expiry () =
  let d = Deadline.mint ~now:100.0 ~budget:2.0 in
  Alcotest.(check (float 1e-9)) "full at mint" 2.0 (Deadline.remaining d ~now:100.0);
  Alcotest.(check bool) "alive just before" false (Deadline.expired d ~now:101.9);
  Alcotest.(check bool) "expired at the boundary" true (Deadline.expired d ~now:102.0);
  Alcotest.(check (float 1e-9)) "clamp to remaining" 0.5 (Deadline.clamp d ~now:101.5 2.0);
  Alcotest.(check (float 1e-9)) "clamp keeps short timeouts" 1.0 (Deadline.clamp d ~now:100.5 1.0);
  Alcotest.(check (float 1e-9)) "clamp floors at zero" 0.0 (Deadline.clamp d ~now:103.0 1.0)

let test_deadline_header_roundtrip () =
  let req = Core.Http.Message.request "http://www.example.edu/index.html" in
  let d = Deadline.mint ~now:10.0 ~budget:1.5 in
  Deadline.stamp d ~now:10.5 req;
  (* The header carries remaining seconds, not an absolute instant:
     the receiver rebuilds the expiry against its own clock. *)
  (match Deadline.of_request ~now:50.0 req with
   | None -> Alcotest.fail "stamped budget should parse"
   | Some carried ->
     Alcotest.(check (float 1e-5)) "remaining survives the hop" 1.0
       (Deadline.remaining carried ~now:50.0));
  Core.Http.Message.set_req_header req Deadline.header "not-a-number";
  Alcotest.(check bool) "malformed header ignored" true
    (Deadline.of_request ~now:0.0 req = None);
  Core.Http.Message.set_req_header req Deadline.header "-0.25";
  (match Deadline.of_request ~now:0.0 req with
   | None -> Alcotest.fail "non-positive budget must still parse"
   | Some d -> Alcotest.(check bool) "and arrive expired" true (Deadline.expired d ~now:0.0))

let test_deadline_admit_combines () =
  let fresh () = Core.Http.Message.request "http://www.example.edu/index.html" in
  (match Deadline.admit ~now:0.0 ~budget:0.0 (fresh ()) with
   | None -> ()
   | Some _ -> Alcotest.fail "no budget, no header: deadline-free");
  (match Deadline.admit ~now:0.0 ~budget:3.0 (fresh ()) with
   | None -> Alcotest.fail "positive budget mints"
   | Some d -> Alcotest.(check (float 1e-9)) "minted" 3.0 (Deadline.remaining d ~now:0.0));
  let req = fresh () in
  Deadline.stamp (Deadline.mint ~now:0.0 ~budget:0.5) ~now:0.0 req;
  (match Deadline.admit ~now:0.0 ~budget:3.0 req with
   | None -> Alcotest.fail "carried + minted admits"
   | Some d ->
     Alcotest.(check (float 1e-5)) "the tighter carried budget wins" 0.5
       (Deadline.remaining d ~now:0.0));
  let req = fresh () in
  Deadline.stamp (Deadline.mint ~now:0.0 ~budget:9.0) ~now:0.0 req;
  (match Deadline.admit ~now:0.0 ~budget:3.0 req with
   | None -> Alcotest.fail "carried + minted admits"
   | Some d ->
     Alcotest.(check (float 1e-5)) "the tighter minted budget wins" 3.0
       (Deadline.remaining d ~now:0.0))

let test_deadline_expired_response_shape () =
  let resp = Deadline.expired_response ~retry_after:2.4 ~reason:"deadline-origin" () in
  Alcotest.(check int) "status" 504 resp.Core.Http.Message.status;
  Alcotest.(check (option string)) "machine-readable reason" (Some "deadline-origin")
    (Core.Http.Message.resp_header resp Deadline.reason_header);
  Alcotest.(check (option string)) "retry-after ceiling" (Some "3")
    (Core.Http.Message.resp_header resp "Retry-After")

let test_retry_budget_spend_and_refill () =
  let m = Core.Telemetry.Metrics.create () in
  (* ratio 0.25 is exact in binary, so the refill arithmetic below is
     deterministic rather than accumulating rounding error. *)
  let rb = Retry_budget.create ~ratio:0.25 ~cap:2.0 ~metrics:m () in
  Alcotest.(check bool) "starts full: first retry" true (Retry_budget.try_retry rb ~upstream:"peer");
  Alcotest.(check bool) "second retry" true (Retry_budget.try_retry rb ~upstream:"peer");
  Alcotest.(check bool) "dry bucket refuses" false (Retry_budget.try_retry rb ~upstream:"peer");
  Alcotest.(check int) "refusal counted, labeled by upstream" 1
    (Core.Telemetry.Metrics.counter m ~labels:[ ("upstream", "peer") ] "retry.budget_exhausted");
  (* Four successes earn exactly one retry at ratio 0.25. *)
  for _ = 1 to 4 do
    Retry_budget.success rb ~upstream:"peer"
  done;
  Alcotest.(check bool) "earned retry" true (Retry_budget.try_retry rb ~upstream:"peer");
  Alcotest.(check bool) "and only one" false (Retry_budget.try_retry rb ~upstream:"peer");
  (* Buckets are per upstream: a dry "peer" bucket says nothing about
     an origin's. And refills cap at the ceiling. *)
  Alcotest.(check bool) "independent upstreams" true
    (Retry_budget.try_retry rb ~upstream:"origin:www.example.edu");
  for _ = 1 to 100 do
    Retry_budget.success rb ~upstream:"peer"
  done;
  Alcotest.(check (float 1e-9)) "refill capped" 2.0 (Retry_budget.tokens rb ~upstream:"peer")

let test_hedge_bucket_bounds_overhead () =
  let m = Core.Telemetry.Metrics.create () in
  (* rate 0.25 and burst 2 keep the token arithmetic exact in binary:
     greedy hedging against 16 primaries drains the burst (2) and then
     earns one hedge per 4 primaries once the refill lands (3 more) —
     never the naive burst + rate * primaries = 6, because tokens are
     spent before later refills accumulate. *)
  let hedge = Hedge.create ~rate:0.25 ~burst:2.0 ~metrics:m () in
  let issued = ref 0 in
  for _ = 1 to 16 do
    Hedge.note_primary hedge;
    if Hedge.try_hedge hedge then incr issued
  done;
  Alcotest.(check int) "burst, then one per 1/rate primaries" 5 !issued;
  Alcotest.(check int) "issued counter" 5 (Core.Telemetry.Metrics.counter m "hedge.issued");
  Hedge.won hedge;
  Hedge.cancelled hedge;
  Hedge.cancelled hedge;
  Alcotest.(check int) "wins" 1 (Core.Telemetry.Metrics.counter m "hedge.wins");
  Alcotest.(check int) "cancellations" 2 (Core.Telemetry.Metrics.counter m "hedge.cancelled")

let test_hedge_delay_from_histogram () =
  Alcotest.(check (float 1e-9)) "no histogram: fallback" 0.25
    (Hedge.delay ~fallback:0.25 ());
  let m = Core.Telemetry.Metrics.create () in
  for _ = 1 to 10 do
    Core.Telemetry.Metrics.observe m "fetch.latency" 0.02
  done;
  let h () = Core.Telemetry.Metrics.histogram m "fetch.latency" in
  Alcotest.(check (float 1e-9)) "under min_samples: fallback" 0.25
    (Hedge.delay ?histogram:(h ()) ~fallback:0.25 ());
  for _ = 1 to 30 do
    Core.Telemetry.Metrics.observe m "fetch.latency" 0.02
  done;
  let d = Hedge.delay ?histogram:(h ()) ~fallback:0.25 () in
  Alcotest.(check bool) "warm histogram: p95, not fallback" true (d < 0.05 && d > 0.0)

let suite =
  [
    Alcotest.test_case "renewable vs nonrenewable" `Quick test_renewable_classification;
    Alcotest.test_case "charges accumulate per interval" `Quick test_charge_accumulates;
    Alcotest.test_case "renewable counts only under congestion" `Quick
      test_renewable_only_counts_under_congestion;
    Alcotest.test_case "nonrenewable always counts" `Quick test_nonrenewable_always_counts;
    Alcotest.test_case "closing an interval resets it" `Quick test_interval_resets;
    Alcotest.test_case "usage is a weighted average" `Quick test_usage_is_weighted_average;
    Alcotest.test_case "past penalization decays" `Quick test_penalization_decays;
    Alcotest.test_case "contribution shares" `Quick test_contribution_shares;
    Alcotest.test_case "active sites and forget" `Quick test_active_sites_and_forget;
    Alcotest.test_case "CONTROL: idle when uncongested" `Quick test_control_idle_when_clear;
    Alcotest.test_case "CONTROL: proportional throttling" `Quick
      test_control_throttles_proportionally;
    Alcotest.test_case "CONTROL: persistent congestion kills top offender" `Quick
      test_control_kills_top_offender_if_congestion_persists;
    Alcotest.test_case "CONTROL: clearing congestion unthrottles" `Quick
      test_control_unthrottles_if_congestion_clears;
    Alcotest.test_case "CONTROL: no kill without a ranked queue" `Quick
      test_control_no_ghost_kill;
    Alcotest.test_case "CONTROL: resources are independent" `Quick
      test_control_per_resource_isolation;
    Alcotest.test_case "CONTROL: unthrottle emits structured events" `Quick
      test_control_unthrottle_event;
    Alcotest.test_case "CONTROL: idle cycle emits no unthrottle events" `Quick
      test_control_no_unthrottle_event_when_idle;
    Alcotest.test_case "close_interval with zero active sites" `Quick
      test_close_interval_zero_sites;
    Alcotest.test_case "contribution with zero total usage" `Quick
      test_contribution_with_zero_total;
    Alcotest.test_case "ADMISSION: idle node admits" `Quick test_admission_admits_when_idle;
    Alcotest.test_case "ADMISSION: CoDel sheds after a full interval" `Quick
      test_admission_codel_sheds_after_interval;
    Alcotest.test_case "ADMISSION: bounded queue sheds when full" `Quick
      test_admission_queue_full;
    Alcotest.test_case "ADMISSION: fair share under contention" `Quick
      test_admission_fair_share;
    Alcotest.test_case "ADMISSION: shed rate over the reporting window" `Quick
      test_admission_shed_rate_window;
    Alcotest.test_case "ADMISSION: reset clears occupancy after a crash" `Quick
      test_admission_reset;
    Alcotest.test_case "BREAKER: trips on consecutive failures" `Quick
      test_breaker_trips_on_consecutive_failures;
    Alcotest.test_case "BREAKER: success resets the failure streak" `Quick
      test_breaker_success_resets_consecutive;
    Alcotest.test_case "BREAKER: half-open admits a single probe" `Quick
      test_breaker_half_open_single_probe;
    Alcotest.test_case "BREAKER: probe failure doubles the cooldown" `Quick
      test_breaker_probe_failure_doubles_cooldown;
    Alcotest.test_case "BREAKER: windowed error rate trips" `Quick
      test_breaker_error_rate_trip;
    Alcotest.test_case "QUARANTINE: bans expire" `Quick test_quarantine_ban_expires;
    Alcotest.test_case "QUARANTINE: windows escalate to a cap" `Quick
      test_quarantine_escalates_and_caps;
    Alcotest.test_case "QUARANTINE: strikes decay with good behaviour" `Quick
      test_quarantine_strikes_decay;
    Alcotest.test_case "QUARANTINE: active list and forgive" `Quick
      test_quarantine_active_and_forgive;
    Alcotest.test_case "DEADLINE: mint, expiry, clamp" `Quick test_deadline_mint_and_expiry;
    Alcotest.test_case "DEADLINE: header round trip and malformed values" `Quick
      test_deadline_header_roundtrip;
    Alcotest.test_case "DEADLINE: admission combines minted and carried" `Quick
      test_deadline_admit_combines;
    Alcotest.test_case "DEADLINE: expired response is a machine-readable 504" `Quick
      test_deadline_expired_response_shape;
    Alcotest.test_case "RETRY BUDGET: spend, refill, per-upstream isolation" `Quick
      test_retry_budget_spend_and_refill;
    Alcotest.test_case "HEDGE: token bucket bounds hedge overhead" `Quick
      test_hedge_bucket_bounds_overhead;
    Alcotest.test_case "HEDGE: delay from p95 with cold-start fallback" `Quick
      test_hedge_delay_from_histogram;
    QCheck_alcotest.to_alcotest admission_slots_balance_prop;
    QCheck_alcotest.to_alcotest throttle_fractions_sum_to_one_prop;
  ]
