(* Hard state (§3.3): per-site stores with quotas, the reliable message
   bus, and script-style replication with conflict resolution. *)

open Core.Replication

let test_store_basic () =
  let s = Store.create () in
  Alcotest.(check bool) "put" true (Store.put s ~site:"a.org" ~key:"k" "v");
  Alcotest.(check (option string)) "get" (Some "v") (Store.get s ~site:"a.org" ~key:"k");
  Store.delete s ~site:"a.org" ~key:"k";
  Alcotest.(check (option string)) "deleted" None (Store.get s ~site:"a.org" ~key:"k")

let test_store_site_partitioning () =
  let s = Store.create () in
  ignore (Store.put s ~site:"a.org" ~key:"k" "for-a");
  ignore (Store.put s ~site:"b.org" ~key:"k" "for-b");
  Alcotest.(check (option string)) "a sees a" (Some "for-a") (Store.get s ~site:"a.org" ~key:"k");
  Alcotest.(check (option string)) "b sees b" (Some "for-b") (Store.get s ~site:"b.org" ~key:"k")

let test_store_quota () =
  let s = Store.create ~quota_bytes:200 () in
  Alcotest.(check bool) "fits" true (Store.put s ~site:"a" ~key:"k1" (String.make 100 'x'));
  Alcotest.(check bool) "over quota" false (Store.put s ~site:"a" ~key:"k2" (String.make 100 'x'));
  Alcotest.(check (option string)) "rejected write absent" None (Store.get s ~site:"a" ~key:"k2");
  (* Quota is per site. *)
  Alcotest.(check bool) "other site unaffected" true
    (Store.put s ~site:"b" ~key:"k" (String.make 100 'x'))

let test_store_overwrite_counts_delta () =
  let s = Store.create ~quota_bytes:200 () in
  ignore (Store.put s ~site:"a" ~key:"k" (String.make 100 'x'));
  Alcotest.(check bool) "same-size overwrite fits" true
    (Store.put s ~site:"a" ~key:"k" (String.make 100 'y'));
  Alcotest.(check bool) "shrink then grow elsewhere" true
    (Store.put s ~site:"a" ~key:"k" "small");
  Alcotest.(check bool) "freed space reusable" true
    (Store.put s ~site:"a" ~key:"k2" (String.make 80 'z'))

let test_store_keys_prefix () =
  let s = Store.create () in
  ignore (Store.put s ~site:"a" ~key:"user:1" "x");
  ignore (Store.put s ~site:"a" ~key:"user:2" "y");
  ignore (Store.put s ~site:"a" ~key:"log:1" "z");
  Alcotest.(check (list string)) "prefix" [ "user:1"; "user:2" ] (Store.keys s ~site:"a" ~prefix:"user:")

let with_bus n_nodes f =
  let sim = Core.Sim.Sim.create () in
  let net = Core.Sim.Net.create sim () in
  let bus = Message_bus.create net in
  let hosts =
    List.init n_nodes (fun i -> Core.Sim.Net.add_host net ~name:(Printf.sprintf "n%d" i) ())
  in
  f sim bus hosts

let test_bus_delivery () =
  with_bus 3 (fun sim bus hosts ->
      let received = ref [] in
      List.iteri
        (fun i host ->
          let name = Printf.sprintf "n%d" i in
          Message_bus.attach bus ~name ~host;
          Message_bus.subscribe bus ~name ~topic:"t" ~handler:(fun ~payload ~from ->
              received := (name, from, payload) :: !received))
        hosts;
      Message_bus.publish bus ~from:"n0" ~topic:"t" ~payload:"hello";
      Core.Sim.Sim.run sim;
      let got = List.sort compare !received in
      Alcotest.(check (list (triple string string string))) "other two receive"
        [ ("n1", "n0", "hello"); ("n2", "n0", "hello") ]
        got;
      Alcotest.(check int) "delivered count" 2 (Message_bus.delivered bus))

let test_bus_topic_filtering () =
  with_bus 2 (fun sim bus hosts ->
      let received = ref 0 in
      List.iteri
        (fun i host ->
          let name = Printf.sprintf "n%d" i in
          Message_bus.attach bus ~name ~host)
        hosts;
      Message_bus.subscribe bus ~name:"n1" ~topic:"interesting"
        ~handler:(fun ~payload:_ ~from:_ -> incr received);
      Message_bus.publish bus ~from:"n0" ~topic:"boring" ~payload:"x";
      Message_bus.publish bus ~from:"n0" ~topic:"interesting" ~payload:"y";
      Core.Sim.Sim.run sim;
      Alcotest.(check int) "only subscribed topic" 1 !received)

let test_bus_in_order_per_sender () =
  with_bus 2 (fun sim bus hosts ->
      let received = ref [] in
      List.iteri
        (fun i host ->
          let name = Printf.sprintf "n%d" i in
          Message_bus.attach bus ~name ~host;
          Message_bus.subscribe bus ~name ~topic:"t" ~handler:(fun ~payload ~from:_ ->
              received := payload :: !received))
        hosts;
      for i = 1 to 20 do
        Message_bus.publish bus ~from:"n0" ~topic:"t" ~payload:(string_of_int i)
      done;
      Core.Sim.Sim.run sim;
      Alcotest.(check (list string)) "in order"
        (List.init 20 (fun i -> string_of_int (i + 1)))
        (List.rev !received))

let test_bus_unattached_publish_raises () =
  with_bus 1 (fun _sim bus _hosts ->
      match Message_bus.publish bus ~from:"ghost" ~topic:"t" ~payload:"x" with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument")

let make_replicas ?resolve n =
  let sim = Core.Sim.Sim.create () in
  let net = Core.Sim.Net.create sim () in
  let bus = Message_bus.create net in
  let nodes =
    List.init n (fun i ->
        let name = Printf.sprintf "edge%d" i in
        let host = Core.Sim.Net.add_host net ~name () in
        Replication.attach ~bus ~name ~host ~store:(Store.create ()) ?resolve ~site:"a.org"
          Replication.Optimistic)
  in
  (sim, nodes)

let test_replication_propagates () =
  let sim, nodes = make_replicas 3 in
  let n0 = List.nth nodes 0 in
  Alcotest.(check bool) "accepted" true (Replication.update n0 ~key:"k" ~value:"v1");
  Core.Sim.Sim.run sim;
  List.iteri
    (fun i node ->
      Alcotest.(check (option string)) (Printf.sprintf "replica %d" i) (Some "v1")
        (Replication.read node ~key:"k"))
    nodes

let test_replication_last_writer_wins () =
  let sim, nodes = make_replicas 2 in
  let a = List.nth nodes 0 and b = List.nth nodes 1 in
  ignore (Replication.update a ~key:"k" ~value:"from-a");
  Core.Sim.Sim.run sim;
  ignore (Replication.update b ~key:"k" ~value:"from-b");
  Core.Sim.Sim.run sim;
  Alcotest.(check (option string)) "a converged" (Some "from-b") (Replication.read a ~key:"k");
  Alcotest.(check (option string)) "b converged" (Some "from-b") (Replication.read b ~key:"k")

let test_replication_concurrent_updates_converge () =
  let sim, nodes = make_replicas 2 in
  let a = List.nth nodes 0 and b = List.nth nodes 1 in
  (* Concurrent: both update before any delivery. *)
  ignore (Replication.update a ~key:"k" ~value:"from-a");
  ignore (Replication.update b ~key:"k" ~value:"from-b");
  Core.Sim.Sim.run sim;
  let va = Replication.read a ~key:"k" in
  let vb = Replication.read b ~key:"k" in
  Alcotest.(check bool) "converged to one winner" true (va = vb && va <> None)

let test_replication_delete_tombstones () =
  let sim, nodes = make_replicas 2 in
  let a = List.nth nodes 0 and b = List.nth nodes 1 in
  ignore (Replication.update a ~key:"k" ~value:"v");
  Core.Sim.Sim.run sim;
  Replication.delete b ~key:"k";
  Core.Sim.Sim.run sim;
  Alcotest.(check (option string)) "deleted everywhere" None (Replication.read a ~key:"k");
  Alcotest.(check (list string)) "keys exclude tombstones" [] (Replication.keys a ~prefix:"")

let test_replication_custom_resolver () =
  (* Domain-specific conflict resolution (§3.3): take the max. *)
  let resolve ~key:_ ~current ~proposed =
    match current with
    | Some c when int_of_string c > int_of_string proposed -> c
    | _ -> proposed
  in
  let sim, nodes = make_replicas ~resolve 2 in
  let a = List.nth nodes 0 and b = List.nth nodes 1 in
  ignore (Replication.update a ~key:"count" ~value:"10");
  Core.Sim.Sim.run sim;
  ignore (Replication.update b ~key:"count" ~value:"3");
  Core.Sim.Sim.run sim;
  Alcotest.(check (option string)) "resolver keeps max" (Some "10")
    (Replication.read b ~key:"count")

let test_registration () =
  let sim, nodes = make_replicas 2 in
  let reg0 = Registration.create (List.nth nodes 0) in
  let reg1 = Registration.create (List.nth nodes 1) in
  Alcotest.(check bool) "register" true (reg0 |> fun r -> Registration.register r ~user:"alice" ~profile:"p1");
  Core.Sim.Sim.run sim;
  Alcotest.(check bool) "duplicate rejected remotely" false
    (Registration.register reg1 ~user:"alice" ~profile:"p2");
  Alcotest.(check (option string)) "visible remotely" (Some "p1")
    (Registration.lookup reg1 ~user:"alice");
  Alcotest.(check bool) "update profile" true
    (Registration.update_profile reg1 ~user:"alice" ~profile:"p3");
  Core.Sim.Sim.run sim;
  Alcotest.(check (option string)) "updated everywhere" (Some "p3")
    (Registration.lookup reg0 ~user:"alice");
  Alcotest.(check int) "count" 1 (Registration.user_count reg0);
  Alcotest.(check bool) "unknown update rejected" false
    (Registration.update_profile reg0 ~user:"bob" ~profile:"p")


let make_primary_group n =
  let sim = Core.Sim.Sim.create () in
  let net = Core.Sim.Net.create sim () in
  let bus = Message_bus.create net in
  let nodes =
    List.init n (fun i ->
        let name = Printf.sprintf "edge%d" i in
        let host = Core.Sim.Net.add_host net ~name () in
        Replication.attach ~bus ~name ~host ~store:(Store.create ()) ~site:"a.org"
          (Replication.Primary "edge0"))
  in
  (sim, nodes)

let test_primary_routes_through_primary () =
  let sim, nodes = make_primary_group 3 in
  let replica = List.nth nodes 2 in
  (* A write at a non-primary replica is forwarded, serialized by the
     primary, and broadcast back to everyone. *)
  Alcotest.(check bool) "accepted" true (Replication.update replica ~key:"k" ~value:"v");
  (* Before delivery the writing replica has not applied it locally. *)
  Alcotest.(check (option string)) "not yet applied locally" None
    (Replication.read replica ~key:"k");
  Core.Sim.Sim.run sim;
  List.iteri
    (fun i node ->
      Alcotest.(check (option string)) (Printf.sprintf "replica %d converged" i) (Some "v")
        (Replication.read node ~key:"k"))
    nodes

let test_primary_serializes_concurrent_writes () =
  (* Two replicas write concurrently; the primary imposes one order and
     every replica ends with the same winner — no split-brain. *)
  let sim, nodes = make_primary_group 3 in
  let r1 = List.nth nodes 1 and r2 = List.nth nodes 2 in
  ignore (Replication.update r1 ~key:"k" ~value:"from-1");
  ignore (Replication.update r2 ~key:"k" ~value:"from-2");
  Core.Sim.Sim.run sim;
  let views = List.map (fun n -> Replication.read n ~key:"k") nodes in
  (match views with
   | first :: rest ->
     Alcotest.(check bool) "some winner" true (first <> None);
     List.iter (fun v -> Alcotest.(check bool) "all agree" true (v = first)) rest
   | [] -> Alcotest.fail "no nodes");
  (* The order is the primary's arrival order, deterministic in the
     simulator: the first proposal wins the first version but the
     second overwrites it — last arrival at the primary is final. *)
  Alcotest.(check bool) "primary's serialization applied" true
    (List.hd views = Some "from-2" || List.hd views = Some "from-1")

let test_primary_write_at_primary_is_immediate () =
  let sim, nodes = make_primary_group 2 in
  let primary = List.hd nodes in
  ignore (Replication.update primary ~key:"k" ~value:"direct");
  Alcotest.(check (option string)) "applied immediately at primary" (Some "direct")
    (Replication.read primary ~key:"k");
  Core.Sim.Sim.run sim;
  Alcotest.(check (option string)) "replicated" (Some "direct")
    (Replication.read (List.nth nodes 1) ~key:"k")

(* --- fault injection: partitions, retries, anti-entropy -------------- *)

let with_faulty_bus plan ?max_attempts f =
  let sim = Core.Sim.Sim.create () in
  let net = Core.Sim.Net.create sim () in
  Core.Sim.Net.set_faults net plan;
  let bus = Message_bus.create ?max_attempts net in
  let hosts = List.init 2 (fun i -> Core.Sim.Net.add_host net ~name:(Printf.sprintf "n%d" i) ()) in
  f sim bus hosts

let attach_pair bus hosts =
  List.mapi
    (fun i host ->
      Replication.attach ~bus ~name:(Printf.sprintf "n%d" i) ~host ~store:(Store.create ())
        ~site:"s.org" Replication.Optimistic)
    hosts

let test_partition_convergence_via_retries () =
  (* A 5 s partition sits inside the bus's ~31 s retry budget: writes
     made on both sides during the partition converge after heal with
     zero dead letters. *)
  let sim0 = Core.Sim.Sim.create () in
  let t0 = Core.Sim.Sim.now sim0 in
  let plan = Core.Faults.Plan.create () in
  Core.Faults.Plan.partition plan ~a:[ "n0" ] ~b:[ "n1" ] ~at:(t0 +. 1.0) ~heal:(t0 +. 6.0);
  with_faulty_bus plan (fun sim bus hosts ->
      match attach_pair bus hosts with
      | [ r0; r1 ] ->
        Core.Sim.Sim.schedule_at sim (t0 +. 2.0) (fun () ->
            ignore (Replication.update r0 ~key:"left" ~value:"from-n0");
            ignore (Replication.update r1 ~key:"right" ~value:"from-n1"));
        (* Retry timers are daemon events: drive the clock explicitly. *)
        Core.Sim.Sim.run ~until:(t0 +. 60.0) sim;
        List.iter
          (fun r ->
            Alcotest.(check (option string))
              (Replication.name r ^ " sees left") (Some "from-n0")
              (Replication.read r ~key:"left");
            Alcotest.(check (option string))
              (Replication.name r ^ " sees right") (Some "from-n1")
              (Replication.read r ~key:"right"))
          [ r0; r1 ];
        Alcotest.(check int) "no dead letters after quiescence" 0 (Message_bus.dead_letters bus)
      | _ -> Alcotest.fail "expected two replicas")

let test_long_partition_anti_entropy_recovery () =
  (* A partition that outlasts a tiny retry budget dead-letters the
     broadcast; periodic anti-entropy re-registration converges the far
     side anyway once the partition heals. *)
  let sim0 = Core.Sim.Sim.create () in
  let t0 = Core.Sim.Sim.now sim0 in
  let plan = Core.Faults.Plan.create () in
  Core.Faults.Plan.partition plan ~a:[ "n0" ] ~b:[ "n1" ] ~at:(t0 +. 1.0) ~heal:(t0 +. 20.0);
  with_faulty_bus plan ~max_attempts:2 (fun sim bus hosts ->
      match attach_pair bus hosts with
      | [ r0; r1 ] ->
        Replication.start_anti_entropy r0 ~interval:7.0 ();
        Core.Sim.Sim.schedule_at sim (t0 +. 2.0) (fun () ->
            ignore (Replication.update r0 ~key:"k" ~value:"survives"));
        Core.Sim.Sim.run ~until:(t0 +. 60.0) sim;
        Alcotest.(check bool) "the partition exhausted the retry budget" true
          (Message_bus.dead_letters bus > 0);
        Alcotest.(check (option string)) "anti-entropy converged the far side"
          (Some "survives") (Replication.read r1 ~key:"k")
      | _ -> Alcotest.fail "expected two replicas")

let replication_convergence_prop =
  QCheck.Test.make ~name:"replication: all replicas converge after quiescence" ~count:50
    QCheck.(pair (int_range 2 5) (small_list (pair (int_range 0 4) (int_range 0 100))))
    (fun (n, writes) ->
      let sim, nodes = make_replicas n in
      let arr = Array.of_list nodes in
      List.iter
        (fun (who, v) ->
          ignore
            (Replication.update arr.(who mod n) ~key:"k" ~value:(string_of_int v)))
        writes;
      Core.Sim.Sim.run sim;
      let views = List.map (fun node -> Replication.read node ~key:"k") nodes in
      match views with
      | [] -> true
      | first :: rest -> List.for_all (fun v -> v = first) rest)

let suite =
  [
    Alcotest.test_case "store: basic operations" `Quick test_store_basic;
    Alcotest.test_case "store: per-site partitioning" `Quick test_store_site_partitioning;
    Alcotest.test_case "store: quota enforcement" `Quick test_store_quota;
    Alcotest.test_case "store: overwrites account the delta" `Quick
      test_store_overwrite_counts_delta;
    Alcotest.test_case "store: prefix key listing" `Quick test_store_keys_prefix;
    Alcotest.test_case "bus: delivery to all subscribers" `Quick test_bus_delivery;
    Alcotest.test_case "bus: topic filtering" `Quick test_bus_topic_filtering;
    Alcotest.test_case "bus: per-sender ordering" `Quick test_bus_in_order_per_sender;
    Alcotest.test_case "bus: unattached sender rejected" `Quick
      test_bus_unattached_publish_raises;
    Alcotest.test_case "replication: updates propagate" `Quick test_replication_propagates;
    Alcotest.test_case "replication: last writer wins" `Quick test_replication_last_writer_wins;
    Alcotest.test_case "replication: concurrent updates converge" `Quick
      test_replication_concurrent_updates_converge;
    Alcotest.test_case "replication: deletes replicate" `Quick
      test_replication_delete_tombstones;
    Alcotest.test_case "replication: custom conflict resolver" `Quick
      test_replication_custom_resolver;
    Alcotest.test_case "registration vocabulary (SPECweb99)" `Quick test_registration;
    Alcotest.test_case "primary: writes route through the primary" `Quick
      test_primary_routes_through_primary;
    Alcotest.test_case "primary: concurrent writes serialize" `Quick
      test_primary_serializes_concurrent_writes;
    Alcotest.test_case "primary: primary writes are immediate" `Quick
      test_primary_write_at_primary_is_immediate;
    Alcotest.test_case "faults: healed partition converges via retries" `Quick
      test_partition_convergence_via_retries;
    Alcotest.test_case "faults: anti-entropy recovers dead-lettered updates" `Quick
      test_long_partition_anti_entropy_recovery;
    QCheck_alcotest.to_alcotest replication_convergence_prop;
  ]
