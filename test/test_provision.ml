(* The capacity-plan toolchain (lib/nk_provision): parsing, the four
   verifier passes (units, ordering, feasibility, shadowing) against a
   golden diagnostics corpus that pins message text AND position, the
   lowering to node configs, and the end-to-end guarantee that a
   verifier-accepted plan always lowers to a config node construction
   accepts (they share one checker, [Config.validate]). *)

module P = Core.Provision.Provision
module Lower = Core.Provision.Lower
module D = Core.Analysis.Diagnostic
module Config = Core.Node.Config

let diag_strings (r : P.report) = List.map D.to_string r.P.diagnostics

let check_diags label plan expected =
  Alcotest.(check (list string)) label expected (diag_strings (P.check plan))

(* --- parsing ---------------------------------------------------------- *)

let test_parse_positions () =
  let r = P.check "node \"*\" {\n  capacity { admission = 64 }\n}\n" in
  Alcotest.(check int) "clean plan: no diagnostics" 0 (List.length r.P.diagnostics);
  match r.P.plan with
  | None -> Alcotest.fail "plan did not parse"
  | Some plan ->
    Alcotest.(check int) "one item" 1 (List.length plan.Core.Provision.Ast.items);
    Alcotest.(check string) "hash is sha-256 hex" "64"
      (string_of_int (String.length plan.Core.Provision.Ast.hash))

let test_parse_error_position () =
  check_diags "missing brace"
    "node \"*\" \n  capacity { admission = 64 }\n"
    [ "2:3: error[parse-error]: expected '{' to open the node block, found identifier \
       \"capacity\"" ]

let test_lex_error () =
  check_diags "unknown unit"
    "node \"*\" { capacity { admission = 64qux } }\n"
    [ "1:35: error[lex-error]: unknown unit \"qux\" (expected %, ms, s, m, h, b, kb, mb or \
       gb)" ]

let test_units_sugar () =
  (* 500ms, 5m, 8mb, underscores in numbers all normalize. *)
  let r =
    P.compile
      "node \"*\" {\n\
      \  capacity { admission = 64; target = 500ms; fuel = 2_000_000; heap = 8mb }\n\
      \  quarantine { base = 2s; max = 5m }\n\
       }\n"
  in
  Alcotest.(check int) "clean" 0 (P.errors r);
  match r.P.lowered with
  | [ l ] ->
    let c = l.Lower.config in
    Alcotest.(check (float 1e-9)) "500ms" 0.5 c.Config.admission_target;
    Alcotest.(check int) "2_000_000" 2_000_000 c.Config.script_max_fuel;
    Alcotest.(check int) "8mb" (8 * 1024 * 1024) c.Config.script_max_heap;
    Alcotest.(check (float 1e-9)) "2s" 2.0 c.Config.termination_penalty;
    Alcotest.(check (float 1e-9)) "5m" 300.0 c.Config.quarantine_max
  | _ -> Alcotest.fail "expected exactly one lowered config"

let test_hotspots_section () =
  (* The hotspots section lowers to the DHT hot-key knobs; detection
     stays off unless the plan turns it on. *)
  let r =
    P.compile
      "node \"*\" {\n\
      \  hotspots { enabled = on; threshold = 12; replicas = 2; ttl = 90s; halflife = 5s }\n\
       }\n"
  in
  Alcotest.(check int) "clean" 0 (P.errors r);
  match r.P.lowered with
  | [ l ] ->
    let c = l.Lower.config in
    Alcotest.(check bool) "enabled" true c.Config.enable_hotspots;
    Alcotest.(check (float 1e-9)) "threshold" 12.0 c.Config.hotspot_threshold;
    Alcotest.(check int) "replicas" 2 c.Config.hotspot_replicas;
    Alcotest.(check (float 1e-9)) "ttl" 90.0 c.Config.hotspot_ttl;
    Alcotest.(check (float 1e-9)) "halflife" 5.0 c.Config.hotspot_halflife
  | _ -> Alcotest.fail "expected exactly one lowered config"

let test_deadline_section () =
  (* The deadline section lowers to the tail-tolerance knobs; all of
     them ship off so a plan that says nothing changes nothing. *)
  let r =
    P.compile
      "node \"*\" {\n\
      \  deadline { request = 2s; hedge = on; hedge-rate = 4%; retry_budget = 10% }\n\
       }\n"
  in
  Alcotest.(check int) "clean" 0 (P.errors r);
  (match r.P.lowered with
   | [ l ] ->
     let c = l.Lower.config in
     Alcotest.(check (float 1e-9)) "request" 2.0 c.Config.request_deadline;
     Alcotest.(check bool) "hedge" true c.Config.enable_hedging;
     Alcotest.(check (float 1e-9)) "hedge-rate" 0.04 c.Config.hedge_rate;
     Alcotest.(check (float 1e-9)) "retry_budget" 0.1 c.Config.retry_budget_ratio
   | _ -> Alcotest.fail "expected exactly one lowered config");
  (* Defaults: a plan with an empty deadline section keeps the tail
     machinery off. *)
  match (P.compile "node \"*\" {\n  deadline { }\n}\n").P.lowered with
  | [ l ] ->
    let c = l.Lower.config in
    Alcotest.(check (float 1e-9)) "off by default" 0.0 c.Config.request_deadline;
    Alcotest.(check bool) "hedging off" false c.Config.enable_hedging;
    Alcotest.(check (float 1e-9)) "no retry budget" 0.0 c.Config.retry_budget_ratio
  | _ -> Alcotest.fail "expected exactly one lowered config"

let test_deadline_rate_range () =
  check_diags "hedge-rate above 100%"
    "node \"*\" {\n  deadline { hedge-rate = 130% }\n}\n"
    [ "2:27: error[unit-mismatch]: deadline.hedge-rate: percent must be in (0%, 100%]" ]

(* --- golden diagnostics: units pass ----------------------------------- *)

let test_units_unknown_section () =
  check_diags "unknown section"
    "node \"*\" {\n  capcity { admission = 64 }\n}\n"
    [ "2:3: error[unknown-section]: unknown section \"capcity\" (expected capacity, \
       diffusion, hotspots, breaker, quarantine, deadline)" ]

let test_units_unknown_key () =
  check_diags "unknown key"
    "node \"*\" {\n  breaker { failures = 3; cooloff = 5s }\n}\n"
    [ "2:27: error[unknown-key]: unknown breaker setting \"cooloff\" (expected failures, \
       error-rate, window, cooldown, max)" ]

let test_units_kind_mismatch () =
  check_diags "duration where count expected"
    "node \"*\" {\n  capacity { admission = 2s }\n}\n"
    [ "2:26: error[unit-mismatch]: capacity.admission: expected a bare count, got duration" ]

let test_units_share_not_percent () =
  check_diags "share in seconds"
    "site \"a.example\" { share >= 30s }\n"
    [ "1:20: error[unit-mismatch]: share must be a percent (e.g. 30%), got duration" ]

let test_units_share_out_of_range () =
  check_diags "share above 100%"
    "site \"a.example\" { share >= 130% }\n"
    [ "1:20: error[share-out-of-range]: share must be in (0%, 100%], got 130%" ]

let test_units_bad_pattern () =
  check_diags "interior wildcard"
    "site \"a.*.example\" { fuel <= 1000 }\n"
    [ "1:6: error[bad-pattern]: site pattern \"a.*.example\": wildcards must be \"*\" or \
       \"*.suffix\"" ]

(* --- golden diagnostics: ordering pass -------------------------------- *)

let test_ordering_inverted_waters () =
  check_diags "low above default high"
    "node \"*\" {\n  diffusion { low = 0.9 }\n}\n"
    [ "2:21: error[inverted-waters]: diffusion waters: low (0.9) must be below high (0.8) \
       (the default high)" ]

let test_ordering_waters_both_set () =
  check_diags "both set, inverted"
    "node \"*\" {\n  diffusion { low = 80%; high = 40% }\n}\n"
    [ "2:21: error[inverted-waters]: diffusion waters: low (0.8) must be below high (0.4)" ]

let test_ordering_breaker_cooldown () =
  check_diags "cooldown above cap"
    "node \"*\" {\n  breaker { cooldown = 2m; max = 30s }\n}\n"
    [ "2:24: error[breaker-cooldown-exceeds-max]: breaker cooldown (120s) exceeds the \
       backoff cap (30s)" ]

let test_ordering_quarantine_base () =
  check_diags "node quarantine base above max"
    "node \"*\" {\n  quarantine { base = 10m; max = 4m }\n}\n"
    [ "2:23: error[quarantine-base-exceeds-max]: quarantine base window (600s) exceeds the \
       cap (240s)" ]

let test_ordering_site_quarantine () =
  check_diags "site quarantine base above its max"
    "site \"a.example\" { quarantine base 10m max 5m }\n"
    [ "1:36: error[quarantine-base-exceeds-max]: site \"a.example\": quarantine base window \
       (600s) exceeds its max (300s)" ]

(* --- golden diagnostics: feasibility pass ----------------------------- *)

let test_feasibility_oversubscribed () =
  check_diags "shares above 100%"
    "site \"a.example\" { share >= 60% }\nsite \"b.example\" { share >= 70% }\n"
    [ "2:20: error[shares-infeasible]: declared shares sum to 130% of admission capacity \
       (over 100%); site \"b.example\" is the rule that crosses the line" ]

let test_feasibility_wildcard_share () =
  check_diags "share on wildcard"
    "site \"*.example\" { share >= 10% }\n"
    [ "1:20: error[share-on-wildcard]: site \"*.example\": a share on a wildcard pattern \
       reserves capacity for unboundedly many tenants; name each tenant site explicitly" ]

let test_feasibility_rounds_to_zero () =
  check_diags "1% of 10 slots"
    "node \"*\" {\n  capacity { admission = 10 }\n}\nsite \"a.example\" { share >= 1% }\n"
    [ "4:20: error[share-rounds-to-zero]: site \"a.example\": a 1% share of node \"*\"'s \
       admission capacity (10 slots) rounds to zero slots" ]

(* --- golden diagnostics: shadowing pass ------------------------------- *)

let test_shadowing_warns () =
  check_diags "wildcard shadows later exact rule"
    "site \"*.example\" { fuel <= 1000 }\nsite \"a.example\" { fuel <= 2000 }\n"
    [ "2:6: warning[shadowed-rule]: site rule \"a.example\" can never match: every site it \
       covers is claimed by \"*.example\" (line 1)" ]

let test_shadowed_share_not_counted () =
  (* The shadowed rule's share must not count toward feasibility: the
     only error here would be double-counting a.example's 60%. *)
  let r =
    P.check "site \"a.example\" { share >= 60% }\nsite \"a.example\" { share >= 60% }\n"
  in
  Alcotest.(check int) "one warning, no errors" 0 (P.errors r);
  Alcotest.(check int) "shadow warning present" 1 (P.warnings r)

(* --- lowering --------------------------------------------------------- *)

let multi_tenant =
  "node \"*.nakika.net\" {\n\
  \  capacity { admission = 64; target = 500ms }\n\
   }\n\
   site \"video.example\" { share >= 30%; fuel <= 40000; heap <= 4mb; quarantine base 2s \
   max 5m }\n\
   site \"news.example\" { share >= 20% }\n"

let test_lowering_multi_tenant () =
  let r = P.compile multi_tenant in
  Alcotest.(check int) "clean" 0 (P.errors r);
  match r.P.lowered with
  | [ l ] ->
    let c = l.Lower.config in
    Alcotest.(check string) "pattern" "*.nakika.net" l.Lower.node_pattern;
    Alcotest.(check int) "capacity" 64 c.Config.admission_capacity;
    Alcotest.(check (list (pair string (float 1e-9)))) "shares in declaration order"
      [ ("video.example", 0.30); ("news.example", 0.20) ]
      c.Config.site_shares;
    Alcotest.(check (list (pair string int))) "fuel caps" [ ("video.example", 40000) ]
      c.Config.site_fuel;
    Alcotest.(check (list (pair string int))) "heap caps"
      [ ("video.example", 4 * 1024 * 1024) ]
      c.Config.site_heap;
    (match c.Config.site_quarantine with
     | [ (site, base, max_) ] ->
       Alcotest.(check string) "quarantine site" "video.example" site;
       Alcotest.(check (float 1e-9)) "base" 2.0 base;
       Alcotest.(check (float 1e-9)) "max" 300.0 max_
     | _ -> Alcotest.fail "expected one quarantine override");
    (match c.Config.plan_hash with
     | Some h -> Alcotest.(check int) "plan hash recorded" 64 (String.length h)
     | None -> Alcotest.fail "plan hash missing")
  | _ -> Alcotest.fail "expected exactly one lowered config"

let test_lowering_deterministic () =
  let c1 = P.compile multi_tenant and c2 = P.compile multi_tenant in
  match (c1.P.lowered, c2.P.lowered) with
  | [ a ], [ b ] ->
    Alcotest.(check bool) "identical configs" true (a.Lower.config = b.Lower.config);
    Alcotest.(check bool) "identical hashes" true (P.hash c1 = P.hash c2)
  | _ -> Alcotest.fail "expected one lowered config each"

let test_config_for_matching () =
  let r =
    P.compile
      "node \"nk1.nakika.net\" {\n  capacity { admission = 32 }\n}\n\
       node \"*\" {\n  capacity { admission = 64 }\n}\n"
  in
  Alcotest.(check int) "clean" 0 (P.errors r);
  let cap node =
    match P.config_for r ~node with
    | Some c -> c.Config.admission_capacity
    | None -> -1
  in
  Alcotest.(check int) "exact match wins" 32 (cap "nk1.nakika.net");
  Alcotest.(check int) "wildcard catches the rest" 64 (cap "nk2.nakika.net")

let test_site_only_plan_gets_default_node () =
  let r = P.compile "site \"a.example\" { share >= 10% }\n" in
  Alcotest.(check int) "clean" 0 (P.errors r);
  match r.P.lowered with
  | [ l ] ->
    Alcotest.(check string) "implicit wildcard node" "*" l.Lower.node_pattern;
    Alcotest.(check int) "default capacity" Config.default.Config.admission_capacity
      l.Lower.config.Config.admission_capacity
  | _ -> Alcotest.fail "expected one lowered config"

let test_explain_mentions_lowering () =
  let r = P.compile multi_tenant in
  let text = P.explain r in
  List.iter
    (fun needle ->
      let found =
        let n = String.length needle and len = String.length text in
        let rec scan i = i + n <= len && (String.sub text i n = needle || scan (i + 1)) in
        scan 0
      in
      Alcotest.(check bool) (Printf.sprintf "explain mentions %s" needle) true found)
    [ "capacity.admission -> admission_capacity"; "share 30%"; "quarantine base 2s" ]

(* --- the end-to-end guarantee (qcheck) -------------------------------- *)

(* Random plans over the real grammar: values are drawn from mixed
   ranges (valid and invalid), so some plans verify and some do not.
   The property under test is one-sided: whenever the verifier says
   yes, the lowered configs must pass [Config.validate] — the exact
   checker [Node.create] enforces. *)
let gen_plan =
  QCheck.Gen.(
    let value =
      oneof
        [
          map (fun n -> Printf.sprintf "%d" n) (int_range (-2) 200);
          map (fun n -> Printf.sprintf "%d%%" n) (int_range (-10) 160);
          map (fun n -> Printf.sprintf "%dms" n) (int_range (-100) 5000);
          map (fun n -> Printf.sprintf "%ds" n) (int_range 0 400);
          map (fun n -> Printf.sprintf "%dmb" n) (int_range 0 128);
          oneofl [ "on"; "off"; "0.3"; "0.9" ];
        ]
    in
    let setting (section, key) =
      map (fun v -> Printf.sprintf "    %s = %s" key v) value
      >|= fun s -> (section, s)
    in
    let keys =
      [
        ("capacity", "admission"); ("capacity", "target"); ("capacity", "fuel");
        ("capacity", "heap"); ("diffusion", "low"); ("diffusion", "high");
        ("diffusion", "enabled"); ("breaker", "cooldown"); ("breaker", "max");
        ("quarantine", "base"); ("quarantine", "max");
      ]
    in
    let node_block =
      let* chosen = List.fold_right
        (fun k acc ->
          let* keep = bool in
          let* rest = acc in
          if keep then let* s = setting k in return (s :: rest) else return rest)
        keys (return [])
      in
      let by_section section =
        List.filter_map (fun (s, line) -> if s = section then Some line else None) chosen
      in
      let section name =
        match by_section name with
        | [] -> ""
        | lines -> Printf.sprintf "  %s {\n%s\n  }\n" name (String.concat "\n" lines)
      in
      return
        (Printf.sprintf "node \"*\" {\n%s%s%s%s}\n" (section "capacity")
           (section "diffusion") (section "breaker") (section "quarantine"))
    in
    let site i =
      let* share = int_range 1 60 in
      let* with_share = bool in
      let* fuel = int_range (-5) 100000 in
      let* with_fuel = bool in
      let clauses =
        (if with_share then [ Printf.sprintf "share >= %d%%" share ] else [])
        @ (if with_fuel then [ Printf.sprintf "fuel <= %d" fuel ] else [])
      in
      match clauses with
      | [] -> return ""
      | clauses ->
        return
          (Printf.sprintf "site \"tenant%d.example\" { %s }\n" i (String.concat "; " clauses))
    in
    let* node = node_block in
    let* n_sites = int_range 0 4 in
    let* sites =
      List.fold_right
        (fun i acc ->
          let* s = site i in
          let* rest = acc in
          return (s :: rest))
        (List.init n_sites (fun i -> i))
        (return [])
    in
    return (node ^ String.concat "" sites))

let accepted_plans_lower_to_valid_configs =
  QCheck.Test.make ~name:"verifier-accepted plans lower to node-accepted configs"
    ~count:300
    (QCheck.make ~print:(fun s -> s) gen_plan)
    (fun plan_text ->
      let checked = P.check plan_text in
      QCheck.assume (P.errors checked = 0);
      let r = P.compile plan_text in
      if P.errors r > 0 then
        QCheck.Test.fail_reportf "verified plan failed to compile:\n%s"
          (String.concat "\n" (diag_strings r));
      if r.P.lowered = [] then QCheck.Test.fail_reportf "verified plan lowered to nothing";
      List.iter
        (fun (l : Lower.lowered) ->
          match Config.validate l.Lower.config with
          | [] -> ()
          | problems ->
            QCheck.Test.fail_reportf "verifier accepted but node rejects: %s\nplan:\n%s"
              (String.concat "; " problems) plan_text)
        r.P.lowered;
      true)

let lowering_is_deterministic =
  QCheck.Test.make ~name:"lowering is deterministic" ~count:100
    (QCheck.make ~print:(fun s -> s) gen_plan)
    (fun plan_text ->
      let a = P.compile plan_text and b = P.compile plan_text in
      List.map (fun l -> l.Lower.config) a.P.lowered
      = List.map (fun l -> l.Lower.config) b.P.lowered)

(* --- plan-provisioned node end to end --------------------------------- *)

let test_plan_drives_a_node () =
  let r = P.compile multi_tenant in
  let config =
    match P.config_for r ~node:"nk1.nakika.net" with
    | Some c -> c
    | None -> Alcotest.fail "no config for node"
  in
  let cluster = Core.Node.Cluster.create () in
  let origin = Core.Node.Cluster.add_origin cluster ~name:"video.example" () in
  Core.Node.Origin.set_static origin ~path:"/a.html" ~max_age:300 "<html>v</html>";
  let proxy = Core.Node.Cluster.add_proxy cluster ~name:"nk1.nakika.net" ~config () in
  let client = Core.Node.Cluster.add_client cluster ~name:"c1" in
  let result = ref None in
  Core.Node.Cluster.fetch cluster ~client ~proxy
    (Core.Http.Message.request "http://video.example/a.html")
    (fun resp -> result := Some resp);
  Core.Node.Cluster.run cluster;
  (match !result with
   | Some resp -> Alcotest.(check int) "served" 200 resp.Core.Http.Message.status
   | None -> Alcotest.fail "no response");
  (* The plan's share table reached the admission controller. *)
  match Core.Node.Node.admission proxy with
  | None -> Alcotest.fail "admission controller missing"
  | Some adm ->
    Alcotest.(check int) "video slice: 30% of 64"
      19
      (Core.Resource.Admission.fair_share adm ~site:"video.example");
    Alcotest.(check int) "news slice: 20% of 64" 13
      (Core.Resource.Admission.fair_share adm ~site:"news.example")

let suite =
  [
    Alcotest.test_case "parse: clean plan, positions, hash" `Quick test_parse_positions;
    Alcotest.test_case "parse: error carries position" `Quick test_parse_error_position;
    Alcotest.test_case "lex: unknown unit" `Quick test_lex_error;
    Alcotest.test_case "units: suffix sugar normalizes" `Quick test_units_sugar;
    Alcotest.test_case "units: hotspots section lowers" `Quick test_hotspots_section;
    Alcotest.test_case "units: deadline section lowers" `Quick test_deadline_section;
    Alcotest.test_case "units: deadline rate range" `Quick test_deadline_rate_range;
    Alcotest.test_case "units: unknown section" `Quick test_units_unknown_section;
    Alcotest.test_case "units: unknown key" `Quick test_units_unknown_key;
    Alcotest.test_case "units: kind mismatch" `Quick test_units_kind_mismatch;
    Alcotest.test_case "units: share must be percent" `Quick test_units_share_not_percent;
    Alcotest.test_case "units: share range" `Quick test_units_share_out_of_range;
    Alcotest.test_case "units: bad pattern" `Quick test_units_bad_pattern;
    Alcotest.test_case "ordering: inverted waters vs default" `Quick
      test_ordering_inverted_waters;
    Alcotest.test_case "ordering: inverted waters, both set" `Quick
      test_ordering_waters_both_set;
    Alcotest.test_case "ordering: breaker cooldown cap" `Quick test_ordering_breaker_cooldown;
    Alcotest.test_case "ordering: quarantine base cap" `Quick test_ordering_quarantine_base;
    Alcotest.test_case "ordering: site quarantine window" `Quick
      test_ordering_site_quarantine;
    Alcotest.test_case "feasibility: oversubscribed shares" `Quick
      test_feasibility_oversubscribed;
    Alcotest.test_case "feasibility: wildcard share" `Quick test_feasibility_wildcard_share;
    Alcotest.test_case "feasibility: share rounds to zero" `Quick
      test_feasibility_rounds_to_zero;
    Alcotest.test_case "shadowing: warns on dominated rule" `Quick test_shadowing_warns;
    Alcotest.test_case "shadowing: shadowed share not double-counted" `Quick
      test_shadowed_share_not_counted;
    Alcotest.test_case "lowering: multi-tenant plan" `Quick test_lowering_multi_tenant;
    Alcotest.test_case "lowering: deterministic" `Quick test_lowering_deterministic;
    Alcotest.test_case "lowering: config_for first match" `Quick test_config_for_matching;
    Alcotest.test_case "lowering: site-only plan" `Quick test_site_only_plan_gets_default_node;
    Alcotest.test_case "explain: shows the lowering map" `Quick test_explain_mentions_lowering;
    QCheck_alcotest.to_alcotest accepted_plans_lower_to_valid_configs;
    QCheck_alcotest.to_alcotest lowering_is_deterministic;
    Alcotest.test_case "plan config drives a real node" `Quick test_plan_drives_a_node;
  ]
