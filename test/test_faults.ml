(* Deterministic fault injection: the chaos suite. A seeded
   [Nk_faults.Plan] makes links drop, hosts crash and partitions form,
   and these tests check the stack degrades instead of wedging: every
   client request resolves (response or explicit failure), the same
   seed reproduces the same schedule and telemetry, and crashed hosts
   never fire callbacks captured before the crash. CI runs this suite
   under several NAKIKA_CHAOS_SEED values. *)

open Core.Node
open Core.Http
module Plan = Core.Faults.Plan
module Sim = Core.Sim.Sim
module Net = Core.Sim.Net
module Prng = Core.Util.Prng
module Metrics = Core.Telemetry.Metrics

(* The simulator's default start time (January 2006); fault plans use
   absolute times and are built before the cluster exists. *)
let epoch = 1_136_073_600.0

(* CI reruns the chaos soak under a few fixed seeds via this variable;
   locally it defaults to 0. *)
let seed_base =
  match int_of_string_opt (try Sys.getenv "NAKIKA_CHAOS_SEED" with Not_found -> "0") with
  | Some n -> n * 1_000_003
  | None -> 0

let proxy_names =
  [ "nk-a.nakika.net"; "nk-b.nakika.net"; "nk-c.nakika.net"; "nk-d.nakika.net" ]

(* Derive a random-but-reproducible fault schedule from [seed], within
   the soak envelope: drops <= 30%, at most 2 partitions that always
   heal, at most one crash/restart per proxy. *)
let random_plan seed =
  let rng = Prng.create (seed_base + seed) in
  let plan = Plan.create ~seed:(seed_base + seed) () in
  Plan.drop_link plan ~probability:(Prng.float rng 0.30) ();
  if Prng.bool rng then
    Plan.spike_link plan ~probability:(Prng.float rng 0.2) ~extra:(Prng.float rng 2.0) ();
  let n_partitions = Prng.int rng 3 in
  for _ = 1 to n_partitions do
    let split = 1 + Prng.int rng 3 in
    let a = List.filteri (fun i _ -> i < split) proxy_names in
    let b = List.filteri (fun i _ -> i >= split) proxy_names in
    let at = epoch +. 5.0 +. Prng.float rng 25.0 in
    Plan.partition plan ~a ~b ~at ~heal:(at +. 2.0 +. Prng.float rng 8.0)
  done;
  List.iter
    (fun name ->
      if Prng.bool rng then begin
        let at = epoch +. 5.0 +. Prng.float rng 35.0 in
        Plan.crash plan ~host:name ~at ~restart:(at +. 1.0 +. Prng.float rng 9.0) ()
      end)
    proxy_names;
  plan

(* A 4-node cluster replaying a script-free workload (no nakika.js, so
   no process-global script caches can perturb the telemetry snapshot)
   under the given plan. Returns (issued, answered, ok, statuses in
   order, fault-layer telemetry). *)
let run_chaos plan =
  let cluster = Cluster.create ~seed:(Plan.seed plan) ~faults:plan () in
  let origin = Cluster.add_origin cluster ~name:"www.example.edu" () in
  Origin.set_static origin ~path:"/index.html" ~max_age:60 "<html>chaos</html>";
  Origin.set_static origin ~path:"/other.html" ~max_age:60 "<html>other</html>";
  let proxies =
    List.map (fun name -> Cluster.add_proxy cluster ~name ()) proxy_names
  in
  let clients =
    [ Cluster.add_client cluster ~name:"c1"; Cluster.add_client cluster ~name:"c2" ]
  in
  let issued = ref 0 and answered = ref 0 and ok = ref 0 in
  let statuses = Buffer.create 256 in
  let sim = Cluster.sim cluster in
  let proxy_arr = Array.of_list proxies in
  let client_arr = Array.of_list clients in
  for i = 0 to 29 do
    let offset = 1.0 +. (2.0 *. float_of_int i) in
    Sim.schedule_at sim (epoch +. offset) (fun () ->
        incr issued;
        let path = if i mod 3 = 0 then "/other.html" else "/index.html" in
        let client = client_arr.(i mod Array.length client_arr) in
        let proxy = proxy_arr.(i mod Array.length proxy_arr) in
        Cluster.fetch cluster ~client ~proxy ~timeout:15.0
          (Message.request ("http://www.example.edu" ^ path))
          (fun resp ->
            incr answered;
            if Status.is_success resp.Message.status then incr ok;
            Buffer.add_string statuses (string_of_int resp.Message.status);
            Buffer.add_char statuses ' '))
  done;
  (* Past the last possible client timeout (offset 59 + 15s) with slack
     for retry/anti-entropy daemons. *)
  Sim.run ~until:(epoch +. 120.0) sim;
  let m = Metrics.create () in
  Metrics.merge ~into:m (Net.metrics (Cluster.net cluster));
  Metrics.merge ~into:m (Core.Replication.Message_bus.metrics (Cluster.bus cluster));
  Metrics.merge ~into:m (Core.Overlay.Dht.metrics (Cluster.dht cluster));
  (!issued, !answered, !ok, Buffer.contents statuses, Metrics.to_json_lines m)

(* --- the qcheck soak ------------------------------------------------ *)

let chaos_soak_prop =
  QCheck.Test.make ~name:"chaos soak: no hung requests under random schedules"
    ~count:200 QCheck.small_nat (fun seed ->
      let issued, answered, _ok, _statuses, _telemetry = run_chaos (random_plan seed) in
      issued = 30 && answered = issued)

let test_chaos_determinism () =
  (* Same seed => identical fault schedule, identical responses in
     identical order, bit-identical fault-layer telemetry. *)
  let seed = 1234 in
  let run () = run_chaos (random_plan seed) in
  let i1, a1, ok1, s1, t1 = run () in
  let i2, a2, ok2, s2, t2 = run () in
  Alcotest.(check int) "issued" i1 i2;
  Alcotest.(check int) "answered" a1 a2;
  Alcotest.(check int) "ok" ok1 ok2;
  Alcotest.(check string) "status stream" s1 s2;
  Alcotest.(check string) "telemetry snapshot" t1 t2

let test_different_seeds_differ () =
  (* Not a hard guarantee for any pair, but these two differ — guards
     against the plan ignoring its seed entirely. *)
  let _, _, _, s1, t1 = run_chaos (random_plan 1) in
  let _, _, _, s2, t2 = run_chaos (random_plan 2) in
  Alcotest.(check bool) "schedules differ" true (s1 <> s2 || t1 <> t2)

(* --- plan unit behaviour -------------------------------------------- *)

let test_plan_partition_window () =
  let plan = Plan.create () in
  Plan.partition plan ~a:[ "x" ] ~b:[ "y" ] ~at:10.0 ~heal:20.0;
  let fate now = Plan.link_fate plan ~now ~src:"x" ~dst:"y" in
  Alcotest.(check bool) "before" true (fate 5.0 = `Deliver 0.0);
  Alcotest.(check bool) "during" true (fate 15.0 = `Drop);
  Alcotest.(check bool) "reverse direction too" true
    (Plan.link_fate plan ~now:15.0 ~src:"y" ~dst:"x" = `Drop);
  Alcotest.(check bool) "unrelated pair" true
    (Plan.link_fate plan ~now:15.0 ~src:"x" ~dst:"z" = `Deliver 0.0);
  Alcotest.(check bool) "healed" true (fate 20.0 = `Deliver 0.0)

let test_plan_crash_incarnations () =
  let plan = Plan.create () in
  Plan.crash plan ~host:"h" ~at:10.0 ~restart:20.0 ();
  Alcotest.(check bool) "up before" false (Plan.is_down plan ~now:9.9 "h");
  Alcotest.(check bool) "down during" true (Plan.is_down plan ~now:10.0 "h");
  Alcotest.(check bool) "up after restart" false (Plan.is_down plan ~now:20.0 "h");
  Alcotest.(check int) "incarnation before" 0 (Plan.incarnation plan ~now:9.9 "h");
  Alcotest.(check int) "incarnation after" 1 (Plan.incarnation plan ~now:25.0 "h");
  Alcotest.(check (option (float 0.001))) "restart time" (Some 20.0)
    (Plan.restart_time plan ~now:12.0 "h")

let test_plan_drop_rate_and_determinism () =
  let sample seed =
    let plan = Plan.create ~seed () in
    Plan.drop_link plan ~probability:0.3 ();
    List.init 1000 (fun i ->
        Plan.link_fate plan ~now:(float_of_int i) ~src:"a" ~dst:"b" = `Drop)
  in
  let drops l = List.length (List.filter Fun.id l) in
  let one = sample 9 in
  Alcotest.(check bool) "rate near 30%" true (drops one > 230 && drops one < 370);
  Alcotest.(check bool) "same seed, same fates" true (one = sample 9);
  Alcotest.(check bool) "different seed, different fates" true (one <> sample 10)

let test_plan_origin_windows () =
  let plan = Plan.create () in
  Plan.fail_origin plan ~host:"o" ~at:5.0 ~until:10.0 ();
  Plan.slow_origin plan ~host:"o" ~at:20.0 ~until:30.0 ~factor:4.0;
  Alcotest.(check bool) "ok outside" true (Plan.origin_state plan ~now:1.0 ~host:"o" = `Ok);
  Alcotest.(check bool) "failing" true (Plan.origin_state plan ~now:6.0 ~host:"o" = `Fail 503);
  Alcotest.(check bool) "slow" true (Plan.origin_state plan ~now:25.0 ~host:"o" = `Slow 4.0);
  Alcotest.(check bool) "other host untouched" true
    (Plan.origin_state plan ~now:6.0 ~host:"p" = `Ok)

(* --- the latent bug: crashed hosts must not fire captured callbacks --- *)

let test_crash_during_transfer () =
  let sim = Sim.create () in
  let net = Net.create sim () in
  let t0 = Sim.now sim in
  let plan = Plan.create () in
  (* b crashes while the message is on the wire and restarts *before*
     delivery time: the callback belongs to b's dead incarnation and
     must not fire after the restart. *)
  Plan.crash plan ~host:"b" ~at:(t0 +. 0.5) ~restart:(t0 +. 0.9) ();
  Net.set_faults net plan;
  let a = Net.add_host net ~name:"a" () in
  let b = Net.add_host net ~name:"b" () in
  Net.connect net a b ~latency:1.0 ~bandwidth:1e9;
  let fired = ref false in
  Net.send net ~src:a ~dst:b ~size:100 (fun () -> fired := true);
  Sim.run ~until:(t0 +. 5.0) sim;
  Alcotest.(check bool) "pre-crash callback suppressed" false !fired;
  Alcotest.(check int) "suppression counted" 1
    (Metrics.counter (Net.metrics net) "net.lost-callbacks");
  Alcotest.(check int) "crash counted" 1 (Metrics.counter (Net.metrics net) "node.crashes");
  (* A message sent after the restart reaches the new incarnation. *)
  let fired2 = ref false in
  Net.send net ~src:a ~dst:b ~size:100 (fun () -> fired2 := true);
  Sim.run ~until:(t0 +. 10.0) sim;
  Alcotest.(check bool) "post-restart delivery works" true !fired2

let test_crash_clears_cpu_queue () =
  let sim = Sim.create () in
  let net = Net.create sim () in
  let t0 = Sim.now sim in
  let plan = Plan.create () in
  Plan.crash plan ~host:"h" ~at:(t0 +. 1.0) ~restart:(t0 +. 2.0) ();
  Net.set_faults net plan;
  let h = Net.add_host net ~name:"h" () in
  let done_ = ref false in
  (* 5 s of queued work; the crash at +1 s wipes the queue and the
     completion callback with it. *)
  Net.cpu_run net h ~seconds:5.0 (fun () -> done_ := true);
  Sim.run ~until:(t0 +. 1.5) sim;
  Alcotest.(check (float 0.001)) "backlog cleared by crash" 0.0 (Net.cpu_backlog net h);
  Sim.run ~until:(t0 +. 10.0) sim;
  Alcotest.(check bool) "queued work's callback lost" false !done_;
  (* New work after restart completes normally. *)
  let done2 = ref false in
  Net.cpu_run net h ~seconds:0.5 (fun () -> done2 := true);
  Sim.run ~until:(t0 +. 11.0) sim;
  Alcotest.(check bool) "post-restart work runs" true !done2

let test_dropped_send_counts () =
  let sim = Sim.create () in
  let net = Net.create sim () in
  let plan = Plan.create () in
  Plan.drop_link plan ~src:"a" ~dst:"b" ~probability:1.0 ();
  Net.set_faults net plan;
  let a = Net.add_host net ~name:"a" () in
  let b = Net.add_host net ~name:"b" () in
  let fired = ref false in
  Net.send net ~src:a ~dst:b ~size:10 (fun () -> fired := true);
  Sim.run sim;
  Alcotest.(check bool) "dropped" false !fired;
  Alcotest.(check int) "counted" 1 (Metrics.counter (Net.metrics net) "net.dropped")

(* --- the acceptance scenario: 10% drops + one healed partition ------- *)

let test_degraded_run_keeps_most_successes () =
  let run plan =
    let issued, answered, ok, _, _ = run_chaos plan in
    Alcotest.(check int) "all issued" 30 issued;
    Alcotest.(check int) "no hung requests" issued answered;
    ok
  in
  let baseline = run (Plan.create ~seed:3 ()) in
  let plan = Plan.create ~seed:3 () in
  Plan.drop_link plan ~probability:0.10 ();
  Plan.partition plan
    ~a:[ "nk-a.nakika.net"; "nk-b.nakika.net" ]
    ~b:[ "nk-c.nakika.net"; "nk-d.nakika.net" ]
    ~at:(epoch +. 10.0) ~heal:(epoch +. 25.0);
  let degraded = run plan in
  Alcotest.(check bool)
    (Printf.sprintf "degraded %d/30 within 80%% of baseline %d/30" degraded baseline)
    true
    (float_of_int degraded >= 0.8 *. float_of_int baseline)

(* --- overload acceptance: flash crowd + crash + dead origin ---------- *)

(* The bench/bench_overload.ml scenario as a pass/fail test: a 600-
   request flash crowd on one hot page plus a 30-request stream to a
   fragile origin, run fault-free and then with one proxy crashing
   mid-crowd (restarting 15 s later) and the fragile origin dead for
   the rest of the run. The overload defenses (admission control,
   health-aware redirection, circuit breakers, stale-if-error) must
   keep goodput at >= 70% of baseline, answer every request, mark every
   shed with Retry-After, and bound how often the dead origin is
   actually contacted. *)
let run_overload plan =
  let cluster = Cluster.create ~seed:(seed_base + Plan.seed plan) ~faults:plan () in
  let origin = Cluster.add_origin cluster ~name:"www.example.edu" () in
  Origin.set_static origin ~path:"/hot.html" ~max_age:60 "<html>flash crowd</html>";
  let dead = Cluster.add_origin cluster ~name:"dead.example.org" () in
  Origin.set_static dead ~path:"/item.html" ~max_age:2 "<html>fragile</html>";
  let proxies =
    List.map
      (fun name -> Cluster.add_proxy cluster ~name ())
      [ "nk-a.nakika.net"; "nk-b.nakika.net"; "nk-c.nakika.net" ]
  in
  ignore proxies;
  let clients =
    [
      Cluster.add_client cluster ~name:"c1";
      Cluster.add_client cluster ~name:"c2";
      Cluster.add_client cluster ~name:"c3";
    ]
  in
  let sim = Cluster.sim cluster in
  let client_arr = Array.of_list clients in
  let issued = ref 0 and answered = ref 0 and ok = ref 0 in
  (* On the hot page the origin stays healthy, so every 503 there is
     node-generated (admission shed, quarantine, breaker) and must
     carry Retry-After. The dead origin's own 503s pass through
     verbatim until its breaker trips — those are exempt. *)
  let sheds_without_retry_after = ref 0 in
  let fetch_at ?(shed_must_hint = false) at url =
    Sim.schedule_at sim at (fun () ->
        incr issued;
        Cluster.fetch cluster
          ~client:client_arr.(!issued mod Array.length client_arr)
          ~timeout:10.0 (Message.request url)
          (fun resp ->
            incr answered;
            match resp.Message.status with
            | 200 -> incr ok
            | 503 ->
              if shed_must_hint && Message.resp_header resp "Retry-After" = None then
                incr sheds_without_retry_after
            | _ -> ()))
  in
  for i = 0 to 599 do
    fetch_at ~shed_must_hint:true
      (epoch +. 5.0 +. (0.002 *. float_of_int i))
      "http://www.example.edu/hot.html"
  done;
  for i = 0 to 29 do
    fetch_at (epoch +. 1.0 +. float_of_int i) "http://dead.example.org/item.html"
  done;
  Sim.run ~until:(epoch +. 90.0) sim;
  (!issued, !answered, !ok, !sheds_without_retry_after, Origin.request_count dead)

let test_overload_acceptance () =
  let issued, answered, baseline_ok, _, _ = run_overload (Plan.create ~seed:5 ()) in
  Alcotest.(check int) "baseline: all issued" 630 issued;
  Alcotest.(check int) "baseline: no hung requests" issued answered;
  let plan = Plan.create ~seed:5 () in
  Plan.crash plan ~host:"nk-b.nakika.net" ~at:(epoch +. 5.6) ~restart:(epoch +. 21.0) ();
  Plan.fail_origin plan ~host:"dead.example.org" ~at:(epoch +. 4.0) ~until:(epoch +. 90.0) ();
  let issued, answered, ok, bare_503s, dead_hits = run_overload plan in
  Alcotest.(check int) "degraded: all issued" 630 issued;
  Alcotest.(check int) "degraded: no hung requests" issued answered;
  Alcotest.(check int) "degraded: every shed carries Retry-After" 0 bare_503s;
  Alcotest.(check bool)
    (Printf.sprintf "goodput %d/630 within 70%% of baseline %d/630" ok baseline_ok)
    true
    (float_of_int ok >= 0.7 *. float_of_int baseline_ok);
  (* 30 requests target the dead origin; the circuit breaker fails fast
     after the first few, so only the initial failures plus occasional
     half-open probes ever reach the wire. *)
  Alcotest.(check bool)
    (Printf.sprintf "dead-origin fetches bounded by the breaker (%d)" dead_hits)
    true (dead_hits <= 15)

let suite =
  [
    Alcotest.test_case "plan: partition window" `Quick test_plan_partition_window;
    Alcotest.test_case "plan: crash incarnations" `Quick test_plan_crash_incarnations;
    Alcotest.test_case "plan: drop rate and replayability" `Quick
      test_plan_drop_rate_and_determinism;
    Alcotest.test_case "plan: origin fail/slow windows" `Quick test_plan_origin_windows;
    Alcotest.test_case "net: crash during transfer suppresses callback" `Quick
      test_crash_during_transfer;
    Alcotest.test_case "net: crash clears the CPU queue" `Quick test_crash_clears_cpu_queue;
    Alcotest.test_case "net: drops are counted, not delivered" `Quick
      test_dropped_send_counts;
    Alcotest.test_case "chaos: same seed, same telemetry" `Quick test_chaos_determinism;
    Alcotest.test_case "chaos: seeds actually vary the schedule" `Quick
      test_different_seeds_differ;
    Alcotest.test_case "chaos: 10% drops + healed partition keeps 80% success" `Quick
      test_degraded_run_keeps_most_successes;
    Alcotest.test_case "overload: flash crowd + crash + dead origin keeps 70% goodput"
      `Quick test_overload_acceptance;
    QCheck_alcotest.to_alcotest chaos_soak_prop;
  ]
