(* Workload generators: the micro-benchmark page, SIMMs, SPECweb, and
   the load drivers. *)

open Core.Workload
open Core.Http

let test_static_page_size () =
  Alcotest.(check int) "exactly 2096 bytes (Google home page)" 2096
    (String.length Static_page.page_body);
  Alcotest.(check int) "constant agrees" Static_page.page_bytes
    (String.length Static_page.page_body)

let test_pred_script_registers_n_policies () =
  let count_policies source =
    let ctx = Core.Script.Interp.create () in
    Core.Script.Builtins.install ctx;
    let registry = Core.Policy.Script_bridge.create_registry () in
    Core.Policy.Script_bridge.install registry ctx;
    ignore (Core.Script.Interp.run_string ctx source);
    List.length (Core.Policy.Script_bridge.policies registry)
  in
  Alcotest.(check int) "pred-0" 0
    (count_policies (Static_page.pred_script ~host:"h.org" ~n:0 ~matching:false));
  Alcotest.(check int) "pred-50" 50
    (count_policies (Static_page.pred_script ~host:"h.org" ~n:50 ~matching:false));
  Alcotest.(check int) "match-1" 1
    (count_policies (Static_page.pred_script ~host:"h.org" ~n:0 ~matching:true));
  Alcotest.(check int) "pred-10 + match" 11
    (count_policies (Static_page.pred_script ~host:"h.org" ~n:10 ~matching:true))

let test_pred_script_nonmatching () =
  let ctx = Core.Script.Interp.create () in
  Core.Script.Builtins.install ctx;
  let registry = Core.Policy.Script_bridge.create_registry () in
  Core.Policy.Script_bridge.install registry ctx;
  ignore
    (Core.Script.Interp.run_string ctx (Static_page.pred_script ~host:"h.org" ~n:20 ~matching:true));
  let policies = Core.Policy.Script_bridge.policies registry in
  let req = Message.request "http://h.org/index.html" in
  (* Exactly the matching policy applies; the 20 decoys never do. *)
  (match Core.Policy.Policy.closest_match policies req with
   | Some p -> Alcotest.(check int) "matching policy is the last" 20 p.Core.Policy.Policy.order
   | None -> Alcotest.fail "expected a match");
  let decoys = List.filter (fun p -> p.Core.Policy.Policy.order < 20) policies in
  List.iter
    (fun p ->
      Alcotest.(check bool) "decoy never matches" true (Core.Policy.Policy.matches p req = None))
    decoys

let test_simm_xml_well_formed () =
  for m = 1 to Simm.modules do
    let xml = Simm.lecture_xml ~module_:m ~lecture:1 ~student:"s1" in
    match Core.Vocab.Xml.parse xml with
    | Ok node ->
      Alcotest.(check bool) "has sections" true
        (List.length (Core.Vocab.Xml.find_all node "section") >= 4)
    | Error e -> Alcotest.failf "module %d xml: %s" m e
  done

let test_simm_personalization () =
  let a = Simm.lecture_xml ~module_:1 ~lecture:1 ~student:"alice" in
  let b = Simm.lecture_xml ~module_:1 ~lecture:1 ~student:"bob" in
  Alcotest.(check bool) "differs by student" false (a = b);
  Alcotest.(check bool) "mentions student" true (Core.Util.Strutil.contains_sub a ~sub:"alice")

let test_simm_render_html () =
  let html = Simm.render_html ~module_:2 ~lecture:3 ~student:"s" in
  Alcotest.(check bool) "article" true
    (Core.Util.Strutil.contains_sub html ~sub:"<article class=\"lecture\">");
  Alcotest.(check bool) "html shell" true (Core.Util.Strutil.starts_with ~prefix:"<html>" html)

let test_simm_requests () =
  let rng = Core.Util.Prng.create 3 in
  let videos = ref 0 and lectures = ref 0 in
  for _ = 1 to 1000 do
    let r = Simm.make_request ~rng ~mode:Simm.Edge ~student:"s1" in
    Alcotest.(check string) "host" Simm.host (Message.host r);
    if Simm.is_video r then incr videos else incr lectures
  done;
  (* 15% video nominal. *)
  Alcotest.(check bool) (Printf.sprintf "video share %d" !videos) true
    (!videos > 80 && !videos < 250);
  let edge = Simm.make_request ~rng ~mode:Simm.Edge ~student:"s1" in
  let single = Simm.make_request ~rng ~mode:Simm.Single_server ~student:"s1" in
  ignore edge;
  ignore single

let test_simm_mode_paths () =
  let rng = Core.Util.Prng.create 17 in
  let rec find_lecture mode =
    let r = Simm.make_request ~rng ~mode ~student:"stu" in
    if Simm.is_video r then find_lecture mode else r
  in
  let edge = find_lecture Simm.Edge in
  Alcotest.(check bool) "edge asks for xml" true
    (Core.Util.Strutil.starts_with ~prefix:"/content/" edge.Message.url.Url.path);
  let single = find_lecture Simm.Single_server in
  Alcotest.(check bool) "single-server asks for html" true
    (Core.Util.Strutil.starts_with ~prefix:"/rendered/" single.Message.url.Url.path)

let test_specweb_mix () =
  let rng = Core.Util.Prng.create 5 in
  let dynamic = ref 0 in
  let n = 2000 in
  for _ = 1 to n do
    if Specweb.is_dynamic (Specweb.make_request ~rng ~mode:Specweb.Php) then incr dynamic
  done;
  let share = float_of_int !dynamic /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "80%% dynamic (got %.2f)" share) true
    (share > 0.74 && share < 0.86)

let test_specweb_variants () =
  let rng = Core.Util.Prng.create 6 in
  let rec find_dynamic mode =
    let r = Specweb.make_request ~rng ~mode in
    if Specweb.is_dynamic r then r else find_dynamic mode
  in
  let php = find_dynamic Specweb.Php in
  Alcotest.(check bool) "php hits /cgi/" true
    (Core.Util.Strutil.starts_with ~prefix:"/cgi/" php.Message.url.Url.path);
  let nk = find_dynamic Specweb.Nakika in
  Alcotest.(check bool) "nakika hits /nkp/" true
    (Core.Util.Strutil.starts_with ~prefix:"/nkp/" nk.Message.url.Url.path)

let test_driver_closed_loop () =
  let cluster = Core.Node.Cluster.create () in
  let origin = Core.Node.Cluster.add_origin cluster ~name:"w.org" () in
  Core.Node.Origin.set_static origin ~path:"/p" ~max_age:300 "x";
  let proxy = Core.Node.Cluster.add_proxy cluster ~name:"nk1.nakika.net" () in
  let client = Core.Node.Cluster.add_client cluster ~name:"c" in
  let sim = Core.Node.Cluster.sim cluster in
  let responses = ref 0 in
  Driver.closed_loop cluster ~client ~proxy
    ~until:(Core.Sim.Sim.now sim +. 1.0)
    ~make_request:(fun _ -> Message.request "http://w.org/p")
    ~on_response:(fun _ _ resp elapsed ->
      Alcotest.(check int) "status" 200 resp.Message.status;
      Alcotest.(check bool) "latency positive" true (elapsed > 0.0);
      incr responses)
    ();
  Core.Node.Cluster.run cluster;
  Alcotest.(check bool) "many iterations" true (!responses > 10)

let test_driver_think_time_limits_rate () =
  let cluster = Core.Node.Cluster.create () in
  let origin = Core.Node.Cluster.add_origin cluster ~name:"w.org" () in
  Core.Node.Origin.set_static origin ~path:"/p" ~max_age:300 "x";
  let proxy = Core.Node.Cluster.add_proxy cluster ~name:"nk1.nakika.net" () in
  let client = Core.Node.Cluster.add_client cluster ~name:"c" in
  let sim = Core.Node.Cluster.sim cluster in
  let responses = ref 0 in
  Driver.closed_loop cluster ~client ~proxy ~think:0.5
    ~until:(Core.Sim.Sim.now sim +. 5.0)
    ~make_request:(fun _ -> Message.request "http://w.org/p")
    ~on_response:(fun _ _ _ _ -> incr responses)
    ();
  Core.Node.Cluster.run cluster;
  Alcotest.(check bool) (Printf.sprintf "rate capped (%d)" !responses) true
    (!responses >= 8 && !responses <= 12)

let test_driver_replay () =
  let cluster = Core.Node.Cluster.create () in
  let origin = Core.Node.Cluster.add_origin cluster ~name:"w.org" () in
  Core.Node.Origin.set_static origin ~path:"/p" ~max_age:300 "x";
  let proxy = Core.Node.Cluster.add_proxy cluster ~name:"nk1.nakika.net" () in
  let client = Core.Node.Cluster.add_client cluster ~name:"c" in
  let events = List.init 5 (fun i -> (float_of_int i *. 0.1, Message.request "http://w.org/p")) in
  let seen = ref 0 in
  Driver.replay cluster ~client ~proxy ~events ~on_response:(fun _ _ _ -> incr seen) ();
  Core.Node.Cluster.run cluster;
  Alcotest.(check int) "all replayed" 5 !seen

let test_flashcrowd_scripts () =
  Alcotest.(check bool) "bomb doubles a string" true
    (Core.Util.Strutil.contains_sub Flashcrowd.memory_bomb_script ~sub:"s + s");
  let r = Flashcrowd.good_request () in
  Alcotest.(check string) "good host" Flashcrowd.good_host (Message.host r);
  let b = Flashcrowd.bomb_request () in
  Alcotest.(check string) "bomb host" Flashcrowd.bomb_host (Message.host b)


let clf_line = "128.122.1.1 - - [05/Jul/2006:14:30:00 +0000] \"GET /content/m1/lec1.xml?student=s1 HTTP/1.1\" 200 9417"

let test_logreplay_parse_line () =
  match Logreplay.parse_line clf_line with
  | Error e -> Alcotest.fail e
  | Ok entry ->
    Alcotest.(check string) "client" "128.122.1.1" (Core.Http.Ip.to_string entry.Logreplay.client);
    Alcotest.(check bool) "method" true
      (Core.Http.Method_.equal entry.Logreplay.meth Core.Http.Method_.GET);
    Alcotest.(check string) "path" "/content/m1/lec1.xml?student=s1" entry.Logreplay.path;
    Alcotest.(check int) "status" 200 entry.Logreplay.status;
    Alcotest.(check int) "bytes" 9417 entry.Logreplay.bytes;
    (* 05 Jul 2006 14:30:00 UTC *)
    Alcotest.(check (float 0.5)) "time" 1152109800.0 entry.Logreplay.time

let test_logreplay_timezone () =
  let line tz = Printf.sprintf
    "1.2.3.4 - - [05/Jul/2006:14:30:00 %s] \"GET / HTTP/1.1\" 200 1" tz in
  let t_of tz =
    match Logreplay.parse_line (line tz) with
    | Ok e -> e.Logreplay.time
    | Error err -> Alcotest.fail err
  in
  (* 14:30 -0500 (US East Coast summer) is 19:30 UTC. *)
  Alcotest.(check (float 0.5)) "offset honored" (t_of "+0000" +. 5.0 *. 3600.0) (t_of "-0500")

let test_logreplay_malformed () =
  List.iter
    (fun line ->
      match Logreplay.parse_line line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected failure for %S" line)
    [ ""; "no fields"; "1.2.3.4 - - not-a-time \"GET / HTTP/1.1\" 200 1";
      "1.2.3.4 - - [05/Jul/2006:14:30:00 +0000] no-request 200 1" ]

let test_logreplay_to_events () =
  let log = String.concat "\n"
    [ "1.1.1.1 - - [05/Jul/2006:10:00:00 +0000] \"GET /a HTTP/1.1\" 200 10";
      "garbage line";
      "2.2.2.2 - - [05/Jul/2006:10:00:08 +0000] \"GET /b HTTP/1.1\" 200 20" ] in
  let entries, errors = Logreplay.parse_log log in
  Alcotest.(check int) "entries" 2 (List.length entries);
  Alcotest.(check int) "errors" 1 errors;
  let events = Logreplay.to_events ~host:"site.org" ~accelerate:4.0 entries in
  (match events with
   | [ (t1, r1); (t2, r2) ] ->
     Alcotest.(check (float 1e-6)) "first at 0" 0.0 t1;
     Alcotest.(check (float 1e-6)) "8s accelerated 4x" 2.0 t2;
     Alcotest.(check string) "host attached" "site.org" (Core.Http.Message.host r1);
     Alcotest.(check string) "path" "/b" r2.Core.Http.Message.url.Core.Http.Url.path;
     Alcotest.(check string) "client carried" "1.1.1.1"
       (Core.Http.Ip.to_string r1.Core.Http.Message.client.Core.Http.Ip.ip)
   | _ -> Alcotest.fail "expected two events")

let test_logreplay_synthesize_parses () =
  let rng = Core.Util.Prng.create 4 in
  let log =
    Logreplay.synthesize ~rng ~start:1152109800.0 ~duration:30.0 ~clients:5
      ~paths:[| "/a.html"; "/b.html" |]
  in
  let entries, errors = Logreplay.parse_log log in
  Alcotest.(check int) "clean" 0 errors;
  Alcotest.(check bool) "plenty of entries" true (List.length entries > 20);
  (* Sorted by time. *)
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Logreplay.time <= b.Logreplay.time && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "chronological" true (sorted entries)

let test_logreplay_drives_cluster () =
  (* End to end: synthesize a log, replay it through a proxy. *)
  let cluster = Core.Node.Cluster.create () in
  let origin = Core.Node.Cluster.add_origin cluster ~name:"site.org" () in
  Core.Node.Origin.set_static origin ~path:"/a.html" ~max_age:300 "A";
  Core.Node.Origin.set_static origin ~path:"/b.html" ~max_age:300 "B";
  let proxy = Core.Node.Cluster.add_proxy cluster ~name:"nk1.nakika.net" () in
  let client = Core.Node.Cluster.add_client cluster ~name:"c" in
  let rng = Core.Util.Prng.create 4 in
  let log =
    Logreplay.synthesize ~rng ~start:1152109800.0 ~duration:20.0 ~clients:3
      ~paths:[| "/a.html"; "/b.html" |]
  in
  let entries, _ = Logreplay.parse_log log in
  let events = Logreplay.to_events ~host:"site.org" entries in
  let ok = ref 0 in
  Driver.replay cluster ~client ~proxy ~events
    ~on_response:(fun _ resp _ -> if resp.Core.Http.Message.status = 200 then incr ok)
    ();
  Core.Node.Cluster.run cluster;
  Alcotest.(check int) "all served" (List.length events) !ok

(* {1 Zipf sampler properties}

   The alias table is the planet-scale workload's engine; these pin
   (a) the construction invariant, (b) seed determinism, and (c) that
   the empirical rank frequencies actually track r^-s. *)

let zipf_alias_invariant_prop =
  (* The alias table redistributes mass but must conserve it: the
     implied probability of each rank — its own slot's acceptance mass
     plus every slot that aliases to it — equals the exact pmf. *)
  QCheck.Test.make ~name:"zipf: alias table conserves per-rank probability" ~count:100
    QCheck.(pair (float_range 0.0 2.0) (int_range 1 300))
    (fun (s, universe) ->
      let z = Zipf.create ~s ~universe in
      let prob, alias = Zipf.table z in
      let n = float_of_int universe in
      let implied = Array.make universe 0.0 in
      Array.iteri
        (fun i p ->
          implied.(i) <- implied.(i) +. (p /. n);
          if p < 1.0 then implied.(alias.(i)) <- implied.(alias.(i)) +. ((1.0 -. p) /. n))
        prob;
      let ok = ref true in
      for r = 0 to universe - 1 do
        if abs_float (implied.(r) -. Zipf.prob z r) > 1e-9 then ok := false
      done;
      !ok)

let zipf_deterministic_prop =
  QCheck.Test.make ~name:"zipf: same seed, bit-identical sample stream" ~count:50
    QCheck.(pair small_int (int_range 1 200))
    (fun (seed, universe) ->
      let z = Zipf.create ~s:0.9 ~universe in
      let draw () =
        let rng = Core.Util.Prng.create seed in
        List.init 500 (fun _ -> Zipf.sample z rng)
      in
      draw () = draw ())

let zipf_frequency_tracks_power_law () =
  (* Empirical frequency of rank r tracks r^-s within tolerance for
     several (s, universe) pairs. Only ranks with enough expected mass
     are held to the relative bound (tail ranks get a handful of
     draws; their relative error is meaningless). *)
  List.iter
    (fun (s, universe, seed) ->
      let z = Zipf.create ~s ~universe in
      let rng = Core.Util.Prng.create seed in
      let draws = 100_000 in
      let counts = Array.make universe 0 in
      for _ = 1 to draws do
        let r = Zipf.sample z rng in
        counts.(r) <- counts.(r) + 1
      done;
      for r = 0 to universe - 1 do
        let expected = Zipf.prob z r *. float_of_int draws in
        if expected >= 500.0 then begin
          let got = float_of_int counts.(r) in
          let rel = abs_float (got -. expected) /. expected in
          Alcotest.(check bool)
            (Printf.sprintf "s=%.1f u=%d rank %d: empirical %.0f vs expected %.0f (rel %.3f)"
               s universe r got expected rel)
            true (rel < 0.15)
        end
      done;
      (* Skew sanity: rank 0 strictly dominates rank 1 for s > 0. *)
      if s > 0.0 && universe > 1 then
        Alcotest.(check bool) "head dominates" true (counts.(0) > counts.(1)))
    [ (0.7, 50, 42); (0.9, 100, 7); (1.2, 20, 11) ]

let test_zipf_edges () =
  (* Uniform when s = 0; single-rank universes always sample 0;
     invalid parameters rejected. *)
  let z = Zipf.create ~s:0.0 ~universe:4 in
  List.iter (fun r -> Alcotest.(check (float 1e-9)) "uniform" 0.25 (Zipf.prob z r)) [ 0; 1; 2; 3 ];
  let one = Zipf.create ~s:0.9 ~universe:1 in
  let rng = Core.Util.Prng.create 3 in
  for _ = 1 to 20 do
    Alcotest.(check int) "only rank" 0 (Zipf.sample one rng)
  done;
  Alcotest.check_raises "universe 0" (Invalid_argument "Zipf.create: universe must be positive")
    (fun () -> ignore (Zipf.create ~s:0.9 ~universe:0));
  Alcotest.check_raises "negative skew" (Invalid_argument "Zipf.create: skew must be non-negative")
    (fun () -> ignore (Zipf.create ~s:(-0.1) ~universe:4));
  (* URL helper emits the rank it sampled. *)
  let u = Zipf.url z (Core.Util.Prng.create 5) ~site:"example.org" in
  Alcotest.(check bool) ("url shape: " ^ u) true
    (String.length u > String.length "http://example.org/zipf/"
     && String.sub u 0 24 = "http://example.org/zipf/")

let suite =
  [
    Alcotest.test_case "static page is exactly 2096 bytes" `Quick test_static_page_size;
    Alcotest.test_case "pred-script registers n policies" `Quick
      test_pred_script_registers_n_policies;
    Alcotest.test_case "pred-script decoys never match" `Quick test_pred_script_nonmatching;
    Alcotest.test_case "simm: xml is well-formed" `Quick test_simm_xml_well_formed;
    Alcotest.test_case "simm: personalization" `Quick test_simm_personalization;
    Alcotest.test_case "simm: stylesheet rendering" `Quick test_simm_render_html;
    Alcotest.test_case "simm: request mix" `Quick test_simm_requests;
    Alcotest.test_case "simm: mode selects origin path" `Quick test_simm_mode_paths;
    Alcotest.test_case "specweb: 80/20 dynamic mix" `Quick test_specweb_mix;
    Alcotest.test_case "specweb: php vs nakika variants" `Quick test_specweb_variants;
    Alcotest.test_case "driver: closed loop" `Quick test_driver_closed_loop;
    Alcotest.test_case "driver: think time caps rate" `Quick test_driver_think_time_limits_rate;
    Alcotest.test_case "driver: open-loop replay" `Quick test_driver_replay;
    Alcotest.test_case "flashcrowd fixtures" `Quick test_flashcrowd_scripts;
    Alcotest.test_case "logreplay: CLF line" `Quick test_logreplay_parse_line;
    Alcotest.test_case "logreplay: timezone offsets" `Quick test_logreplay_timezone;
    Alcotest.test_case "logreplay: malformed lines" `Quick test_logreplay_malformed;
    Alcotest.test_case "logreplay: events (4x acceleration)" `Quick test_logreplay_to_events;
    Alcotest.test_case "logreplay: synthesized logs parse back" `Quick
      test_logreplay_synthesize_parses;
    Alcotest.test_case "logreplay: drives a cluster" `Quick test_logreplay_drives_cluster;
    QCheck_alcotest.to_alcotest zipf_alias_invariant_prop;
    QCheck_alcotest.to_alcotest zipf_deterministic_prop;
    Alcotest.test_case "zipf: empirical frequencies track r^-s" `Quick
      zipf_frequency_tracks_power_law;
    Alcotest.test_case "zipf: edge cases" `Quick test_zipf_edges;
  ]
