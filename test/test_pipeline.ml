(* The scripting pipeline (Fig. 4): stage evaluation, event-handler
   selection and execution, dynamic scheduling, walls, Na Kika Pages
   and ESI. *)

open Core.Pipeline
open Pipeline
open Core.Http

let host = Core.Vocab.Hostcall.stub ()

let stage_of ?(url = "http://site.org/nakika.js") source =
  match Stage.of_script ~url ~host ~source () with
  | Ok stage -> stage
  | Error msg -> Alcotest.failf "stage failed: %s" msg

let req ?(client = "1.2.3.4") url =
  Message.request
    ~client:{ Ip.ip = Ip.of_string_exn client; hostname = None }
    url

(* A loader over an in-memory table of script sources; caches stages the
   way a node would. *)
let loader table =
  let cache : (string, Stage.t) Hashtbl.t = Hashtbl.create 8 in
  fun url ->
    match Hashtbl.find_opt cache url with
    | Some stage -> Some stage
    | None -> (
      match List.assoc_opt url table with
      | None -> None
      | Some source ->
        let stage = stage_of ~url source in
        Hashtbl.add cache url stage;
        Some stage)

let origin_body = "<html>origin content</html>"

let origin_fetch _req = Message.response ~headers:[ ("Content-Type", "text/html") ] ~body:origin_body ()

let test_stage_evaluation_registers_policies () =
  let stage = stage_of {| var p = new Policy(); p.url = ["site.org"]; p.register(); |} in
  Alcotest.(check int) "one policy" 1 (List.length (Stage.policies stage));
  Alcotest.(check bool) "selects" true (Stage.select stage (req "http://site.org/x") <> None);
  Alcotest.(check bool) "rejects" true (Stage.select stage (req "http://other.org/x") = None)

let test_stage_error_reported () =
  match Stage.of_script ~url:"u" ~host ~source:"this is not a program ][" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected stage error"

let test_default_stages_order () =
  (* Fig. 4 pop order: client wall, site script, server wall. *)
  Alcotest.(check (list string)) "order"
    [
      "http://nakika.net/clientwall.js";
      "http://site.org/nakika.js";
      "http://nakika.net/serverwall.js";
    ]
    (default_stages (req "http://site.org/x"))

let test_pipeline_passthrough () =
  let load = loader [] in
  let outcome = execute ~load_stage:load ~fetch:origin_fetch (req "http://site.org/x") in
  Alcotest.(check bool) "from origin" true (outcome.source = From_origin);
  Alcotest.(check int) "no stages matched" 0 outcome.stages_matched;
  Alcotest.(check string) "body" origin_body
    (Body.to_string outcome.response.Message.resp_body)

let test_pipeline_on_response_transform () =
  let table =
    [ ( "http://site.org/nakika.js",
        {|
var p = new Policy();
p.url = ["site.org"];
p.onResponse = function() {
  var body = "", c;
  while ((c = Response.read()) != null) { body += c; }
  Response.write(body.replace("origin", "edge"));
}
p.register();
|} ) ]
  in
  let outcome = execute ~load_stage:(loader table) ~fetch:origin_fetch (req "http://site.org/x") in
  Alcotest.(check string) "transformed" "<html>edge content</html>"
    (Body.to_string outcome.response.Message.resp_body);
  Alcotest.(check bool) "origin still fetched" true (outcome.source = From_origin);
  Alcotest.(check bool) "fuel charged" true (outcome.fuel > 0)

let test_pipeline_on_request_responds () =
  (* An onRequest handler that creates the response short-circuits the
     origin fetch (§3.1: "more efficient if responses are created from
     scratch"). *)
  let fetched = ref false in
  let table =
    [ ( "http://site.org/nakika.js",
        {|
var p = new Policy();
p.url = ["site.org"];
p.onRequest = function() {
  Request.respond(200, "text/plain", "generated at the edge");
}
p.register();
|} ) ]
  in
  let fetch _ =
    fetched := true;
    origin_fetch (req "http://site.org/x")
  in
  let outcome = execute ~load_stage:(loader table) ~fetch (req "http://site.org/x") in
  Alcotest.(check bool) "served by script" true
    (outcome.source = From_script "http://site.org/nakika.js");
  Alcotest.(check string) "body" "generated at the edge"
    (Body.to_string outcome.response.Message.resp_body);
  Alcotest.(check bool) "origin never contacted" false !fetched

let test_pipeline_terminate_admission () =
  (* Fig. 5 as a client wall. *)
  let wall =
    Core.Pipeline.Walls.local_only_wall
      ~urls:[ "bmj.bmjjournals.com/cgi/reprint"; "content.nejm.org/cgi/reprint" ]
  in
  let table = [ ("http://nakika.net/clientwall.js", wall) ] in
  let outcome =
    execute ~load_stage:(loader table) ~fetch:origin_fetch
      (req "http://content.nejm.org/cgi/reprint/paper.pdf")
  in
  Alcotest.(check int) "401" 401 outcome.response.Message.status;
  (* Non-library requests pass. *)
  let ok = execute ~load_stage:(loader table) ~fetch:origin_fetch (req "http://other.org/") in
  Alcotest.(check int) "200" 200 ok.response.Message.status

let test_pipeline_next_stages () =
  (* A service that schedules another stage after itself (§3.1's
     annotations-over-SIMMs composition shape). *)
  let table =
    [
      ( "http://site.org/nakika.js",
        {|
var p = new Policy();
p.url = ["site.org"];
p.nextStages = ["http://svc.org/upper.js"];
p.onResponse = function() {
  var body = "", c;
  while ((c = Response.read()) != null) { body += c; }
  Response.write(body + "<!--site-->");
}
p.register();
|} );
      ( "http://svc.org/upper.js",
        {|
var p = new Policy();
p.onResponse = function() {
  var body = "", c;
  while ((c = Response.read()) != null) { body += c; }
  Response.write(body.toUpperCase());
}
p.register();
|} );
    ]
  in
  let outcome = execute ~load_stage:(loader table) ~fetch:origin_fetch (req "http://site.org/x") in
  (* Dynamically scheduled stage runs *after* the scheduler in the
     forward direction, hence *before* it on the response path: upper
     first, then the site's comment appended. *)
  Alcotest.(check string) "composition order" "<HTML>ORIGIN CONTENT</HTML><!--site-->"
    (Body.to_string outcome.response.Message.resp_body);
  Alcotest.(check int) "both stages matched" 2 outcome.stages_matched

let test_pipeline_scheduling_loop_bounded () =
  let table =
    [ ( "http://site.org/nakika.js",
        {|
var p = new Policy();
p.nextStages = ["http://site.org/nakika.js"];
p.register();
|} ) ]
  in
  let outcome =
    execute ~load_stage:(loader table) ~fetch:origin_fetch ~max_stages:16
      (req "http://site.org/x")
  in
  Alcotest.(check bool) "fails closed" true
    (match outcome.source with From_failure (Script_failure _) -> true | _ -> false);
  Alcotest.(check int) "500" 500 outcome.response.Message.status

let test_pipeline_script_error_yields_500 () =
  let table =
    [ ( "http://site.org/nakika.js",
        {|
var p = new Policy();
p.onResponse = function() { undefinedGlobal.boom(); }
p.register();
|} ) ]
  in
  let outcome = execute ~load_stage:(loader table) ~fetch:origin_fetch (req "http://site.org/x") in
  Alcotest.(check int) "500" 500 outcome.response.Message.status;
  Alcotest.(check bool) "failure recorded" true
    (match outcome.source with From_failure (Script_failure _) -> true | _ -> false)

let test_pipeline_resource_exhaustion_yields_503 () =
  let source =
    {|
var p = new Policy();
p.onResponse = function() { while (true) { } }
p.register();
|}
  in
  let stage =
    match
      Stage.of_script ~url:"http://site.org/nakika.js" ~host ~max_fuel:50_000 ~source ()
    with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let outcome =
    execute
      ~load_stage:(fun url -> if url = "http://site.org/nakika.js" then Some stage else None)
      ~fetch:origin_fetch (req "http://site.org/x")
  in
  Alcotest.(check int) "503" 503 outcome.response.Message.status;
  Alcotest.(check bool) "resources" true
    (match outcome.source with From_failure (Resources _) -> true | _ -> false)

let test_pipeline_killed_pipeline_dies () =
  let source =
    {|
var p = new Policy();
p.onResponse = function() { }
p.register();
|}
  in
  let stage =
    match Stage.of_script ~url:"http://site.org/nakika.js" ~host ~source () with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  Core.Script.Interp.kill (Stage.context stage);
  let outcome =
    execute
      ~load_stage:(fun url -> if url = "http://site.org/nakika.js" then Some stage else None)
      ~fetch:origin_fetch (req "http://site.org/x")
  in
  Alcotest.(check bool) "killed" true (outcome.source = From_failure Killed);
  Alcotest.(check int) "503" 503 outcome.response.Message.status

let test_pipeline_client_predicate_selection () =
  (* Different handlers for different clients within one stage. *)
  let table =
    [ ( "http://site.org/nakika.js",
        {|
var vip = new Policy();
vip.url = ["site.org"];
vip.client = ["10.0.0.0/8"];
vip.onRequest = function() { Request.respond(200, "text/plain", "vip"); }
vip.register();

var everyone = new Policy();
everyone.url = ["site.org"];
everyone.onRequest = function() { Request.respond(200, "text/plain", "general"); }
everyone.register();
|} ) ]
  in
  let load = loader table in
  let vip = execute ~load_stage:load ~fetch:origin_fetch (req ~client:"10.5.5.5" "http://site.org/") in
  Alcotest.(check string) "vip handler" "vip" (Body.to_string vip.response.Message.resp_body);
  let general =
    execute ~load_stage:load ~fetch:origin_fetch (req ~client:"8.8.8.8" "http://site.org/")
  in
  Alcotest.(check string) "general handler" "general"
    (Body.to_string general.response.Message.resp_body)

let test_walls_default_are_noop () =
  let table =
    [
      ("http://nakika.net/clientwall.js", Walls.default_client_wall);
      ("http://nakika.net/serverwall.js", Walls.default_server_wall);
    ]
  in
  let outcome = execute ~load_stage:(loader table) ~fetch:origin_fetch (req "http://site.org/x") in
  Alcotest.(check int) "200" 200 outcome.response.Message.status;
  Alcotest.(check int) "both walls matched" 2 outcome.stages_matched

let test_walls_deny () =
  let table =
    [ ("http://nakika.net/clientwall.js", Walls.deny_urls_wall ~urls:[ "blocked.org" ] ~status:403) ]
  in
  let load = loader table in
  let blocked = execute ~load_stage:load ~fetch:origin_fetch (req "http://blocked.org/x") in
  Alcotest.(check int) "403" 403 blocked.response.Message.status;
  let allowed = execute ~load_stage:load ~fetch:origin_fetch (req "http://fine.org/x") in
  Alcotest.(check int) "others pass" 200 allowed.response.Message.status

let test_rate_limit_wall () =
  let table =
    [ ("http://nakika.net/clientwall.js", Walls.rate_limit_wall ~max_per_client:3) ]
  in
  let load = loader table in
  let statuses =
    List.init 5 (fun _ ->
        (execute ~load_stage:load ~fetch:origin_fetch (req ~client:"9.9.9.9" "http://a.org/x"))
          .response.Message.status)
  in
  Alcotest.(check (list int)) "three pass, then 429" [ 200; 200; 200; 429; 429 ] statuses;
  (* A different client has its own budget. *)
  let other = execute ~load_stage:load ~fetch:origin_fetch (req ~client:"7.7.7.7" "http://a.org/x") in
  Alcotest.(check int) "other client ok" 200 other.response.Message.status

let test_nkp_render () =
  let ctx = Core.Script.Interp.create () in
  Core.Script.Builtins.install ctx;
  Core.Vocab.Eval_v.install ctx;
  Alcotest.(check string) "static text passes" "plain" (Nkp.render ctx "plain");
  Alcotest.(check string) "expression spliced" "2 + 2 = 4"
    (Nkp.render ctx "2 + 2 = <?nkp 2 + 2 ?>");
  Alcotest.(check string) "statements and state" "count: 3"
    (Nkp.render ctx "count: <?nkp var n = 0; n = n + 3; n ?>");
  Alcotest.(check string) "multiple chunks share globals" "a=1 b=2"
    (Nkp.render ctx "a=<?nkp var a = 1; a ?> b=<?nkp a + 1 ?>");
  Alcotest.(check string) "null output suppressed" "x" (Nkp.render ctx "x<?nkp null ?>")

let test_nkp_stage () =
  (* The paper's path: a site schedules nakika.net/nkp.js; text/nkp
     responses are processed edge-side. *)
  let table =
    [
      ( "http://site.org/nakika.js",
        {|
var p = new Policy();
p.url = ["site.org"];
p.nextStages = ["http://nakika.net/nkp.js"];
p.register();
|} );
      ("http://nakika.net/nkp.js", Nkp.script);
    ]
  in
  let fetch _ =
    Message.response
      ~headers:[ ("Content-Type", "text/nkp") ]
      ~body:"<html><?nkp Request.query(\"user\") ?> has <?nkp 40 + 2 ?> points</html>" ()
  in
  let outcome =
    execute ~load_stage:(loader table) ~fetch (req "http://site.org/page.nkp?user=alice")
  in
  Alcotest.(check string) "rendered" "<html>alice has 42 points</html>"
    (Body.to_string outcome.response.Message.resp_body);
  Alcotest.(check (option string)) "content type html" (Some "text/html")
    (Message.content_type outcome.response)

let test_nkp_ignores_other_content () =
  let table = [ ("http://nakika.net/nkp.js", Nkp.script) ] in
  let fetch _ =
    Message.response ~headers:[ ("Content-Type", "text/html") ]
      ~body:"<html><?nkp 1 ?></html>" ()
  in
  let outcome =
    execute ~load_stage:(loader table)
      ~initial_stages:[ "http://nakika.net/nkp.js" ]
      ~fetch (req "http://site.org/page.html")
  in
  Alcotest.(check string) "untouched" "<html><?nkp 1 ?></html>"
    (Body.to_string outcome.response.Message.resp_body)

let test_esi_stage () =
  let fetch (r : Message.request) =
    if r.Message.url.Url.path = "/fragment" then
      Message.response ~headers:[ ("Content-Type", "text/html") ] ~body:"FRAGMENT" ()
    else
      Message.response
        ~headers:[ ("Content-Type", "text/html") ]
        ~body:"<html><esi:include src=\"http://frags.org/fragment\"/></html>" ()
  in
  (* The stage's fetchResource must reach the same content handler. *)
  let esi_host = { (Core.Vocab.Hostcall.stub ()) with Core.Vocab.Hostcall.fetch = fetch } in
  let stage =
    match
      Stage.of_script ~url:"http://nakika.net/esi.js" ~host:esi_host ~source:Esi.script ()
    with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let outcome =
    execute
      ~load_stage:(fun url -> if url = "http://nakika.net/esi.js" then Some stage else None)
      ~initial_stages:[ "http://nakika.net/esi.js" ]
      ~fetch (req "http://site.org/page.html")
  in
  Alcotest.(check string) "assembled" "<html>FRAGMENT</html>"
    (Body.to_string outcome.response.Message.resp_body)

let test_run_handler_return_value_response () =
  (* Handlers may return a {status, contentType, body} object. *)
  let stage =
    stage_of
      {|
var p = new Policy();
p.onRequest = function() {
  return { status: 418, contentType: "text/plain", body: "teapot" };
}
p.register();
|}
  in
  let policy = Option.get (Stage.select stage (req "http://a.org/")) in
  let handler = Option.get policy.Core.Policy.Policy.on_request in
  match run_handler stage ~this_request:(req "http://a.org/") ~response:None handler with
  | Ok (Some resp) ->
    Alcotest.(check int) "status" 418 resp.Message.status;
    Alcotest.(check string) "body" "teapot" (Body.to_string resp.Message.resp_body)
  | _ -> Alcotest.fail "expected response"

let test_run_handler_return_value_headers () =
  (* The returned object's [headers] field must survive into the built
     response (it used to be silently dropped). *)
  let stage =
    stage_of
      {|
var p = new Policy();
p.onRequest = function() {
  return {
    status: 301,
    contentType: "text/plain",
    body: "moved",
    headers: { "Location": "http://b.org/", "X-Nakika-Stage": "wall", "X-Hops": 3 }
  };
}
p.register();
|}
  in
  let policy = Option.get (Stage.select stage (req "http://a.org/")) in
  let handler = Option.get policy.Core.Policy.Policy.on_request in
  match run_handler stage ~this_request:(req "http://a.org/") ~response:None handler with
  | Ok (Some resp) ->
    let header name = Headers.get resp.Message.resp_headers name in
    Alcotest.(check int) "status" 301 resp.Message.status;
    Alcotest.(check (option string)) "location" (Some "http://b.org/") (header "Location");
    Alcotest.(check (option string)) "custom" (Some "wall") (header "X-Nakika-Stage");
    Alcotest.(check (option string)) "number coerced" (Some "3") (header "X-Hops");
    Alcotest.(check (option string))
      "contentType stays authoritative" (Some "text/plain") (header "Content-Type")
  | _ -> Alcotest.fail "expected response"

let suite =
  [
    Alcotest.test_case "stage: script evaluation registers policies" `Quick
      test_stage_evaluation_registers_policies;
    Alcotest.test_case "stage: malformed script reported" `Quick test_stage_error_reported;
    Alcotest.test_case "default stage order (Fig. 4)" `Quick test_default_stages_order;
    Alcotest.test_case "pipeline: passthrough without scripts" `Quick test_pipeline_passthrough;
    Alcotest.test_case "pipeline: onResponse transformation" `Quick
      test_pipeline_on_response_transform;
    Alcotest.test_case "pipeline: onRequest creates response" `Quick
      test_pipeline_on_request_responds;
    Alcotest.test_case "pipeline: Fig. 5 admission control" `Quick
      test_pipeline_terminate_admission;
    Alcotest.test_case "pipeline: dynamic stage scheduling" `Quick test_pipeline_next_stages;
    Alcotest.test_case "pipeline: scheduling loops are bounded" `Quick
      test_pipeline_scheduling_loop_bounded;
    Alcotest.test_case "pipeline: script errors yield 500" `Quick
      test_pipeline_script_error_yields_500;
    Alcotest.test_case "pipeline: resource exhaustion yields 503" `Quick
      test_pipeline_resource_exhaustion_yields_503;
    Alcotest.test_case "pipeline: killed context aborts" `Quick test_pipeline_killed_pipeline_dies;
    Alcotest.test_case "pipeline: per-client handler selection" `Quick
      test_pipeline_client_predicate_selection;
    Alcotest.test_case "walls: defaults are no-ops" `Quick test_walls_default_are_noop;
    Alcotest.test_case "walls: URL deny list" `Quick test_walls_deny;
    Alcotest.test_case "walls: rate limiting" `Quick test_rate_limit_wall;
    Alcotest.test_case "nkp: direct rendering" `Quick test_nkp_render;
    Alcotest.test_case "nkp: as a pipeline stage" `Quick test_nkp_stage;
    Alcotest.test_case "nkp: leaves other content alone" `Quick test_nkp_ignores_other_content;
    Alcotest.test_case "esi: fragment assembly" `Quick test_esi_stage;
    Alcotest.test_case "handlers may return response objects" `Quick
      test_run_handler_return_value_response;
    Alcotest.test_case "returned response objects carry headers" `Quick
      test_run_handler_return_value_headers;
  ]
