(* End-to-end node behaviour on simulated deployments: proxying,
   caching, cooperative caching through the DHT, stage caching and the
   negative cache, URL rewriting, resource controls, hard state, and
   access logs. *)

open Core.Node
open Core.Http

let fetch_sync cluster ~client ?proxy req =
  let result = ref None in
  Cluster.fetch cluster ~client ?proxy req (fun resp -> result := Some resp);
  Cluster.run cluster;
  match !result with Some r -> r | None -> Alcotest.fail "no response"

let body (r : Message.response) = Body.to_string r.Message.resp_body

let basic_site cluster =
  let origin = Cluster.add_origin cluster ~name:"www.example.edu" () in
  Origin.set_static origin ~path:"/index.html" ~max_age:300 "<html>hello</html>";
  origin

let test_plain_proxying () =
  let cluster = Cluster.create () in
  let origin = basic_site cluster in
  let proxy = Cluster.add_proxy cluster ~name:"nk1.nakika.net" () in
  let client = Cluster.add_client cluster ~name:"c1" in
  let resp = fetch_sync cluster ~client ~proxy (Message.request "http://www.example.edu/index.html") in
  Alcotest.(check int) "status" 200 resp.Message.status;
  Alcotest.(check string) "body" "<html>hello</html>" (body resp);
  Alcotest.(check int) "origin hit: page + nakika.js probe" 2 (Origin.request_count origin)

let test_nakika_url_rewriting () =
  let cluster = Cluster.create () in
  ignore (basic_site cluster);
  let proxy = Cluster.add_proxy cluster ~name:"nk1.nakika.net" () in
  let client = Cluster.add_client cluster ~name:"c1" in
  let resp =
    fetch_sync cluster ~client ~proxy
      (Message.request "http://www.example.edu.nakika.net/index.html")
  in
  Alcotest.(check int) "rewritten and served" 200 resp.Message.status;
  Alcotest.(check string) "origin content" "<html>hello</html>" (body resp)

let test_cache_hit_avoids_origin () =
  let cluster = Cluster.create () in
  let origin = basic_site cluster in
  let proxy = Cluster.add_proxy cluster ~name:"nk1.nakika.net" () in
  let client = Cluster.add_client cluster ~name:"c1" in
  let req () = Message.request "http://www.example.edu/index.html" in
  ignore (fetch_sync cluster ~client ~proxy (req ()));
  let before = Origin.request_count origin in
  ignore (fetch_sync cluster ~client ~proxy (req ()));
  Alcotest.(check int) "no extra origin fetch" before (Origin.request_count origin);
  Alcotest.(check bool) "cache hit recorded" true
    (Core.Cache.Http_cache.hits (Node.cache proxy) > 0)

let test_cache_expiry_refetches () =
  let cluster = Cluster.create () in
  let origin = Cluster.add_origin cluster ~name:"www.example.edu" () in
  Origin.set_static origin ~path:"/short.html" ~max_age:10 "v1";
  let proxy = Cluster.add_proxy cluster ~name:"nk1.nakika.net" () in
  let client = Cluster.add_client cluster ~name:"c1" in
  let req () = Message.request "http://www.example.edu/short.html" in
  ignore (fetch_sync cluster ~client ~proxy (req ()));
  Origin.set_static origin ~path:"/short.html" ~max_age:10 "v2";
  (* Still fresh: cached v1. *)
  Alcotest.(check string) "fresh" "v1" (body (fetch_sync cluster ~client ~proxy (req ())));
  (* Let it expire. *)
  Core.Sim.Sim.run ~until:(Core.Sim.Sim.now (Cluster.sim cluster) +. 11.0) (Cluster.sim cluster);
  Alcotest.(check string) "expired -> refetched" "v2"
    (body (fetch_sync cluster ~client ~proxy (req ())))

let test_dht_cooperative_caching () =
  (* Node B should fetch from node A's cache instead of the origin
     ("one cached copy ... is sufficient for avoiding origin server
     accesses", §1). The site publishes a trivial nakika.js so the
     script, too, is served cooperatively. *)
  let cluster = Cluster.create () in
  let origin = basic_site cluster in
  Origin.set_static origin ~path:"/nakika.js" ~content_type:"text/javascript" ~max_age:300
    "var p = new Policy(); p.onResponse = function() { }; p.register();";
  let a = Cluster.add_proxy cluster ~name:"nk-a.nakika.net" () in
  let b = Cluster.add_proxy cluster ~name:"nk-b.nakika.net" () in
  let client = Cluster.add_client cluster ~name:"c1" in
  let req () = Message.request "http://www.example.edu/index.html" in
  ignore (fetch_sync cluster ~client ~proxy:a (req ()));
  let origin_before = Origin.request_count origin in
  let resp = fetch_sync cluster ~client ~proxy:b (req ()) in
  Alcotest.(check string) "content served" "<html>hello</html>" (body resp);
  Alcotest.(check int) "origin fetches unchanged" origin_before (Origin.request_count origin);
  Alcotest.(check bool) "peer fetch recorded" true
    (Core.Sim.Trace.count (Node.trace b) "peer-fetches" > 0)

let test_dht_disabled_goes_to_origin () =
  let config = { Config.default with Config.enable_dht = false } in
  let cluster = Cluster.create () in
  let origin = basic_site cluster in
  let a = Cluster.add_proxy cluster ~name:"nk-a.nakika.net" ~config () in
  let b = Cluster.add_proxy cluster ~name:"nk-b.nakika.net" ~config () in
  let client = Cluster.add_client cluster ~name:"c1" in
  let req () = Message.request "http://www.example.edu/index.html" in
  ignore (fetch_sync cluster ~client ~proxy:a (req ()));
  let before = Origin.request_count origin in
  ignore (fetch_sync cluster ~client ~proxy:b (req ()));
  Alcotest.(check bool) "origin consulted again" true (Origin.request_count origin > before)

let test_site_script_pipeline () =
  let cluster = Cluster.create () in
  let origin = basic_site cluster in
  Origin.set_static origin ~path:"/nakika.js" ~content_type:"text/javascript" ~max_age:300
    {|
var p = new Policy();
p.url = ["www.example.edu"];
p.onResponse = function() {
  var b = "", c;
  while ((c = Response.read()) != null) { b += c; }
  Response.write(b.replace("hello", "edge"));
}
p.register();
|};
  let proxy = Cluster.add_proxy cluster ~name:"nk1.nakika.net" () in
  let client = Cluster.add_client cluster ~name:"c1" in
  let resp = fetch_sync cluster ~client ~proxy (Message.request "http://www.example.edu/index.html") in
  Alcotest.(check string) "transformed" "<html>edge</html>" (body resp);
  Alcotest.(check bool) "stage cached" true (Node.stage_cache_entries proxy >= 1)

let test_negative_cache_for_missing_site_script () =
  let cluster = Cluster.create () in
  let origin = basic_site cluster in
  let proxy = Cluster.add_proxy cluster ~name:"nk1.nakika.net" () in
  let client = Cluster.add_client cluster ~name:"c1" in
  let req () = Message.request "http://www.example.edu/index.html" in
  ignore (fetch_sync cluster ~client ~proxy (req ()));
  let probes_after_first = Origin.request_count origin in
  ignore (fetch_sync cluster ~client ~proxy (req ()));
  ignore (fetch_sync cluster ~client ~proxy (req ()));
  (* nakika.js was probed once, then negative-cached; the page itself is
     cached too, so no further origin traffic at all. *)
  Alcotest.(check int) "no repeated nakika.js probes" probes_after_first
    (Origin.request_count origin)

let test_admin_walls_enforced () =
  let wall = Core.Pipeline.Walls.deny_urls_wall ~urls:[ "forbidden.org" ] ~status:403 in
  let cluster = Cluster.create ~client_wall:wall () in
  let origin = Cluster.add_origin cluster ~name:"forbidden.org" () in
  Origin.set_static origin ~path:"/secret.html" ~max_age:300 "secret";
  let proxy = Cluster.add_proxy cluster ~name:"nk1.nakika.net" () in
  let client = Cluster.add_client cluster ~name:"c1" in
  let resp = fetch_sync cluster ~client ~proxy (Message.request "http://forbidden.org/secret.html") in
  Alcotest.(check int) "admission denied" 403 resp.Message.status;
  Alcotest.(check int) "origin untouched" 0 (Origin.request_count origin)

let test_wall_update_via_expiry () =
  (* §3.2: policy updates ship by publishing new scripts; nodes pick
     them up when cached copies expire. *)
  let cluster = Cluster.create () in
  let origin = basic_site cluster in
  ignore origin;
  let proxy = Cluster.add_proxy cluster ~name:"nk1.nakika.net" () in
  let client = Cluster.add_client cluster ~name:"c1" in
  let req () = Message.request "http://www.example.edu/index.html" in
  Alcotest.(check int) "open at first" 200 (fetch_sync cluster ~client ~proxy (req ())).Message.status;
  (* Publish a deny-all client wall. *)
  Origin.set_static (Cluster.nakika_origin cluster) ~path:"/clientwall.js"
    ~content_type:"text/javascript" ~max_age:300
    (Core.Pipeline.Walls.deny_urls_wall ~urls:[ "www.example.edu" ] ~status:403);
  (* Old wall still cached: *)
  Alcotest.(check int) "still open" 200 (fetch_sync cluster ~client ~proxy (req ())).Message.status;
  (* After the wall script expires (max-age 300) the update applies. *)
  Core.Sim.Sim.run ~until:(Core.Sim.Sim.now (Cluster.sim cluster) +. 301.0) (Cluster.sim cluster);
  Alcotest.(check int) "update enforced" 403
    (fetch_sync cluster ~client ~proxy (req ())).Message.status

let test_plain_proxy_config_runs_no_scripts () =
  let cluster = Cluster.create () in
  let origin = basic_site cluster in
  Origin.set_static origin ~path:"/nakika.js" ~content_type:"text/javascript" ~max_age:300
    {| var p = new Policy(); p.onResponse = function() { Response.write("SCRIPTED"); }; p.register(); |};
  let proxy = Cluster.add_proxy cluster ~name:"plain.nakika.net" ~config:Config.plain_proxy () in
  let client = Cluster.add_client cluster ~name:"c1" in
  let resp = fetch_sync cluster ~client ~proxy (Message.request "http://www.example.edu/index.html") in
  Alcotest.(check string) "unmodified" "<html>hello</html>" (body resp);
  Alcotest.(check int) "no stages" 0 (Node.stage_cache_entries proxy)

let test_memory_bomb_terminated_with_controls () =
  let cluster = Cluster.create () in
  let bomb_origin = Cluster.add_origin cluster ~name:"bomb.example.org" () in
  Core.Workload.Flashcrowd.install_bomb_site bomb_origin;
  let proxy = Cluster.add_proxy cluster ~name:"nk1.nakika.net" () in
  let client = Cluster.add_client cluster ~name:"c1" in
  let sim = Cluster.sim cluster in
  (* Hammer the bomb site for a few simulated seconds. *)
  Core.Workload.Driver.closed_loop cluster ~client ~proxy
    ~until:(Core.Sim.Sim.now sim +. 8.0)
    ~make_request:(fun _ -> Core.Workload.Flashcrowd.bomb_request ())
    ~on_response:(fun _ _ _ _ -> ())
    ();
  Cluster.run cluster;
  Alcotest.(check bool) "bomb site terminated" true
    (List.mem "bomb.example.org" (Node.terminated_sites proxy));
  Alcotest.(check bool) "monitor recorded kills" true
    (match Node.monitor proxy with
     | Some m -> Core.Resource.Monitor.terminations m > 0
     | None -> false)

let test_no_termination_without_controls () =
  let config = { Config.default with Config.enable_resource_controls = false } in
  let cluster = Cluster.create () in
  let bomb_origin = Cluster.add_origin cluster ~name:"bomb.example.org" () in
  Core.Workload.Flashcrowd.install_bomb_site bomb_origin;
  let proxy = Cluster.add_proxy cluster ~name:"nk1.nakika.net" ~config () in
  let client = Cluster.add_client cluster ~name:"c1" in
  let sim = Cluster.sim cluster in
  Core.Workload.Driver.closed_loop cluster ~client ~proxy
    ~until:(Core.Sim.Sim.now sim +. 5.0)
    ~make_request:(fun _ -> Core.Workload.Flashcrowd.bomb_request ())
    ~on_response:(fun _ _ _ _ -> ())
    ();
  Cluster.run cluster;
  Alcotest.(check (list string)) "nobody terminated" [] (Node.terminated_sites proxy)

let test_quarantine_recovery () =
  (* §3.2: penalized sites must be able to recover. A terminated site
     is refused (503 + Retry-After) only for its quarantine window;
     when the window lapses on the simulated clock it serves again, and
     a repeat offense earns a doubled window. *)
  let cluster = Cluster.create () in
  ignore (basic_site cluster);
  let proxy = Cluster.add_proxy cluster ~name:"nk1.nakika.net" () in
  let client = Cluster.add_client cluster ~name:"c1" in
  let sim = Cluster.sim cluster in
  let req () = Message.request "http://www.example.edu/index.html" in
  Alcotest.(check int) "clean site serves" 200
    (fetch_sync cluster ~client ~proxy (req ())).Message.status;
  (* First offense: the Fig. 6 monitor would call this on termination. *)
  let w1 = Core.Resource.Quarantine.punish (Node.quarantine proxy) ~site:"www.example.edu" in
  Alcotest.(check (float 1e-9)) "base window" 30.0 w1;
  let resp = fetch_sync cluster ~client ~proxy (req ()) in
  Alcotest.(check int) "refused while banned" 503 resp.Message.status;
  (match Message.resp_header resp "Retry-After" with
   | Some s ->
     Alcotest.(check bool)
       (Printf.sprintf "Retry-After %s covers the ban" s)
       true
       (match int_of_string_opt s with Some n -> n >= 1 && n <= 31 | None -> false)
   | None -> Alcotest.fail "ban response must carry Retry-After");
  (* The ban lapses: the site recovers. *)
  Core.Sim.Sim.run ~until:(Core.Sim.Sim.now sim +. 31.0) sim;
  Alcotest.(check int) "serves again after the window" 200
    (fetch_sync cluster ~client ~proxy (req ())).Message.status;
  (* Repeat offense: escalated window — still banned after the base
     window, recovered after the doubled one. *)
  let w2 = Core.Resource.Quarantine.punish (Node.quarantine proxy) ~site:"www.example.edu" in
  Alcotest.(check (float 1e-9)) "doubled window" 60.0 w2;
  Core.Sim.Sim.run ~until:(Core.Sim.Sim.now sim +. 31.0) sim;
  Alcotest.(check int) "still banned past the base window" 503
    (fetch_sync cluster ~client ~proxy (req ())).Message.status;
  Core.Sim.Sim.run ~until:(Core.Sim.Sim.now sim +. 30.0) sim;
  Alcotest.(check int) "recovers from the escalated ban too" 200
    (fetch_sync cluster ~client ~proxy (req ())).Message.status

let test_hard_state_replicates_between_proxies () =
  let cluster = Cluster.create () in
  let origin = Cluster.add_origin cluster ~name:"www.spec99.org" () in
  Core.Workload.Specweb.install_origin origin;
  let a = Cluster.add_proxy cluster ~name:"nk-a.nakika.net" () in
  let b = Cluster.add_proxy cluster ~name:"nk-b.nakika.net" () in
  let client = Cluster.add_client cluster ~name:"c1" in
  (* Warm proxy B so it joins the replication group (a node serving a
     site subscribes to that site's updates). *)
  ignore
    (fetch_sync cluster ~client ~proxy:b
       (Message.request "http://www.spec99.org/nkp/profile.nkp?user=nobody"));
  (* Register through proxy A. *)
  let r1 =
    fetch_sync cluster ~client ~proxy:a
      (Message.request "http://www.spec99.org/nkp/register.nkp?user=alice&profile=prof1")
  in
  Alcotest.(check bool) "registered" true
    (Core.Util.Strutil.contains_sub (body r1) ~sub:"registered");
  (* Look up through proxy B after the update propagates. *)
  let r2 =
    fetch_sync cluster ~client ~proxy:b
      (Message.request "http://www.spec99.org/nkp/profile.nkp?user=alice")
  in
  Alcotest.(check bool) "profile visible on other node" true
    (Core.Util.Strutil.contains_sub (body r2) ~sub:"prof1")

let test_access_log_posted () =
  let cluster = Cluster.create () in
  let origin = basic_site cluster in
  let received = ref [] in
  Origin.set_dynamic origin ~prefix:"/log-sink" ~cpu:0.0001 (fun req ->
      received := Body.to_string req.Message.body :: !received;
      Message.response ~body:"ok" ());
  Origin.set_static origin ~path:"/nakika.js" ~content_type:"text/javascript" ~max_age:300
    {|
Log.enable("http://www.example.edu/log-sink");
var p = new Policy();
p.url = ["www.example.edu"];
p.onResponse = function() { };
p.register();
|};
  let proxy = Cluster.add_proxy cluster ~name:"nk1.nakika.net" () in
  let client = Cluster.add_client cluster ~name:"c1" in
  ignore (fetch_sync cluster ~client ~proxy (Message.request "http://www.example.edu/index.html"));
  (* Give the 30-second log poster a chance to run. *)
  Core.Sim.Sim.run ~until:(Core.Sim.Sim.now (Cluster.sim cluster) +. 35.0) (Cluster.sim cluster);
  Cluster.run cluster;
  Alcotest.(check bool) "log delivered" true (!received <> []);
  Alcotest.(check bool) "entry mentions the url" true
    (List.exists
       (fun entry -> Core.Util.Strutil.contains_sub entry ~sub:"/index.html")
       !received)

let test_redirector_integration () =
  let cluster = Cluster.create () in
  ignore (basic_site cluster);
  let near = Cluster.add_proxy cluster ~name:"near.nakika.net" () in
  let far = Cluster.add_proxy cluster ~name:"far.nakika.net" () in
  let client = Cluster.add_client cluster ~name:"c1" in
  Cluster.connect cluster client (Node.host near) ~latency:0.002 ~bandwidth:1e7;
  Cluster.connect cluster client (Node.host far) ~latency:0.3 ~bandwidth:1e7;
  (* No explicit proxy: the redirector picks. *)
  let resp = fetch_sync cluster ~client (Message.request "http://www.example.edu/index.html") in
  Alcotest.(check int) "served" 200 resp.Message.status;
  Alcotest.(check bool) "near proxy took the request" true
    (Core.Sim.Trace.count (Node.trace near) "requests" > 0);
  Alcotest.(check int) "far proxy idle" 0 (Core.Sim.Trace.count (Node.trace far) "requests")


let test_revalidation_304 () =
  (* An expired cache entry with an ETag turns the refetch into a
     conditional GET; the origin's 304 revives the entry without moving
     the body again. *)
  let cluster = Cluster.create () in
  let origin = Cluster.add_origin cluster ~name:"www.example.edu" () in
  Origin.set_static origin ~path:"/page.html" ~max_age:10 "stable content";
  let proxy = Cluster.add_proxy cluster ~name:"nk1.nakika.net" () in
  let client = Cluster.add_client cluster ~name:"c1" in
  let req () = Message.request "http://www.example.edu/page.html" in
  ignore (fetch_sync cluster ~client ~proxy (req ()));
  let bytes_before = Origin.bytes_served origin in
  (* Expire the entry, then fetch again: expect a 304 revalidation. *)
  Core.Sim.Sim.run ~until:(Core.Sim.Sim.now (Cluster.sim cluster) +. 11.0) (Cluster.sim cluster);
  let resp = fetch_sync cluster ~client ~proxy (req ()) in
  Alcotest.(check string) "content served from revived entry" "stable content" (body resp);
  Alcotest.(check bool) "revalidation recorded" true
    (Core.Sim.Trace.count (Node.trace proxy) "revalidations" > 0);
  (* The 304 carried no body: almost no new bytes from the origin. *)
  Alcotest.(check bool) "no full body transfer" true
    (Origin.bytes_served origin - bytes_before < String.length "stable content");
  (* And the revived entry serves fresh hits again. *)
  let hits_before = Core.Cache.Http_cache.hits (Node.cache proxy) in
  ignore (fetch_sync cluster ~client ~proxy (req ()));
  Alcotest.(check bool) "fresh again" true
    (Core.Cache.Http_cache.hits (Node.cache proxy) > hits_before)

let test_revalidation_changed_content () =
  (* When the content changed, the conditional GET returns the new 200
     and the cache is replaced. *)
  let cluster = Cluster.create () in
  let origin = Cluster.add_origin cluster ~name:"www.example.edu" () in
  Origin.set_static origin ~path:"/page.html" ~max_age:10 "version 1";
  let proxy = Cluster.add_proxy cluster ~name:"nk1.nakika.net" () in
  let client = Cluster.add_client cluster ~name:"c1" in
  let req () = Message.request "http://www.example.edu/page.html" in
  ignore (fetch_sync cluster ~client ~proxy (req ()));
  Core.Sim.Sim.run ~until:(Core.Sim.Sim.now (Cluster.sim cluster) +. 11.0) (Cluster.sim cluster);
  Origin.set_static origin ~path:"/page.html" ~max_age:10 "version 2";
  let resp = fetch_sync cluster ~client ~proxy (req ()) in
  Alcotest.(check string) "new content" "version 2" (body resp);
  Alcotest.(check int) "no 304 this time" 0
    (Core.Sim.Trace.count (Node.trace proxy) "revalidations")


let test_integrity_catches_misbehaving_peer () =
  (* §6 end to end: the origin signs its content; node B is misbehaving
     and falsifies what it serves to peers; node A verifies, rejects
     the falsified copy, and falls back to the origin. *)
  let key = "publisher-key" in
  let verify_config = { Config.default with Config.integrity_key = Some key } in
  let bad_config = { Config.default with Config.misbehaving = true } in
  let cluster = Cluster.create () in
  let origin = Cluster.add_origin cluster ~name:"www.example.edu" ~sign_key:key () in
  Origin.set_static origin ~path:"/study.html" ~max_age:300 "<html>study content</html>";
  Origin.set_static origin ~path:"/nakika.js" ~content_type:"text/javascript" ~max_age:300
    "var p = new Policy(); p.onResponse = function() { }; p.register();";
  let bad = Cluster.add_proxy cluster ~name:"nk-bad.nakika.net" ~config:bad_config () in
  let good = Cluster.add_proxy cluster ~name:"nk-good.nakika.net" ~config:verify_config () in
  let client = Cluster.add_client cluster ~name:"c1" in
  let req () = Message.request "http://www.example.edu/study.html" in
  (* Warm the misbehaving node's cache (it serves itself honestly). *)
  ignore (fetch_sync cluster ~client ~proxy:bad (req ()));
  (* The good node finds bad's announcement, gets a falsified copy,
     detects it, and retrieves the authoritative version. *)
  let resp = fetch_sync cluster ~client ~proxy:good (req ()) in
  Alcotest.(check string) "authoritative content served" "<html>study content</html>"
    (body resp);
  Alcotest.(check bool) "violation detected" true
    (Core.Sim.Trace.count (Node.trace good) "integrity-violations" > 0)

let test_integrity_accepts_honest_peer () =
  let key = "publisher-key" in
  let config = { Config.default with Config.integrity_key = Some key } in
  let cluster = Cluster.create () in
  let origin = Cluster.add_origin cluster ~name:"www.example.edu" ~sign_key:key () in
  Origin.set_static origin ~path:"/study.html" ~max_age:300 "<html>study content</html>";
  Origin.set_static origin ~path:"/nakika.js" ~content_type:"text/javascript" ~max_age:300
    "var p = new Policy(); p.onResponse = function() { }; p.register();";
  let a = Cluster.add_proxy cluster ~name:"nk-a.nakika.net" ~config () in
  let b = Cluster.add_proxy cluster ~name:"nk-b.nakika.net" ~config () in
  let client = Cluster.add_client cluster ~name:"c1" in
  let req () = Message.request "http://www.example.edu/study.html" in
  ignore (fetch_sync cluster ~client ~proxy:a (req ()));
  let origin_before = Origin.request_count origin in
  let resp = fetch_sync cluster ~client ~proxy:b (req ()) in
  Alcotest.(check string) "content" "<html>study content</html>" (body resp);
  Alcotest.(check int) "peer copy accepted, origin idle" origin_before
    (Origin.request_count origin);
  Alcotest.(check int) "no violations" 0
    (Core.Sim.Trace.count (Node.trace b) "integrity-violations")


let test_emission_control_on_script_fetches () =
  (* §3.2: the server-side wall mediates hosted scripts' access to web
     resources. A site script that tries to fetch a blocked resource
     gets the wall's denial, and the blocked origin is never contacted. *)
  let server_wall =
    Core.Pipeline.Walls.deny_urls_wall ~urls:[ "internal.example.org" ] ~status:403
  in
  let cluster = Cluster.create ~server_wall () in
  let blocked = Cluster.add_origin cluster ~name:"internal.example.org" () in
  Origin.set_static blocked ~path:"/secret" ~max_age:300 "secret data";
  let origin = Cluster.add_origin cluster ~name:"www.example.edu" () in
  Origin.set_static origin ~path:"/page.html" ~max_age:300 "page";
  Origin.set_static origin ~path:"/fragment" ~max_age:300 "public fragment";
  Origin.set_static origin ~path:"/nakika.js" ~content_type:"text/javascript" ~max_age:300
    {|
var p = new Policy();
p.url = ["www.example.edu/page.html"];
p.onRequest = function() {
  var secret = fetchResource("http://internal.example.org/secret");
  var public_ = fetchResource("http://www.example.edu/fragment");
  Request.respond(200, "text/plain", "secret=" + secret.status + " public=" + public_.status);
}
p.register();
|};
  let proxy = Cluster.add_proxy cluster ~name:"nk1.nakika.net" () in
  let client = Cluster.add_client cluster ~name:"c1" in
  let resp = fetch_sync cluster ~client ~proxy (Message.request "http://www.example.edu/page.html") in
  Alcotest.(check string) "wall denied the internal fetch only" "secret=403 public=200"
    (body resp);
  Alcotest.(check int) "blocked origin untouched" 0 (Origin.request_count blocked);
  Alcotest.(check bool) "denial recorded" true
    (Core.Sim.Trace.count (Node.trace proxy) "emission-denials" > 0)


let test_dht_reannouncement_outlives_ttl () =
  (* The announcement's TTL (dht_ttl) is shorter than a long-lived cache
     entry; the re-announcement daemon keeps the content findable. *)
  let config = { Config.default with Config.dht_ttl = 30.0 } in
  let cluster = Cluster.create () in
  let origin = Cluster.add_origin cluster ~name:"www.example.edu" () in
  Origin.set_static origin ~path:"/longlived.html" ~max_age:3600 "<html>durable content</html>";
  Origin.set_static origin ~path:"/nakika.js" ~content_type:"text/javascript" ~max_age:3600
    "var p = new Policy(); p.onResponse = function() { }; p.register();";
  let a = Cluster.add_proxy cluster ~name:"nk-a.nakika.net" ~config () in
  let b = Cluster.add_proxy cluster ~name:"nk-b.nakika.net" ~config () in
  ignore a;
  let client = Cluster.add_client cluster ~name:"c1" in
  let req () = Message.request "http://www.example.edu/longlived.html" in
  ignore (fetch_sync cluster ~client ~proxy:a (req ()));
  (* Let several announcement TTLs pass. *)
  Core.Sim.Sim.run ~until:(Core.Sim.Sim.now (Cluster.sim cluster) +. 100.0) (Cluster.sim cluster);
  let origin_before = Origin.request_count origin in
  ignore (fetch_sync cluster ~client ~proxy:b (req ()));
  Alcotest.(check bool) "peer copy still found" true
    (Core.Sim.Trace.count (Node.trace b) "peer-fetches" > 0);
  Alcotest.(check int) "origin idle" origin_before (Origin.request_count origin)


let test_range_served_from_full_instance () =
  (* A Range request is processed on the full instance: the site script
     sees and transforms the whole body; the client gets the slice of
     the transformed content as a 206. *)
  let cluster = Cluster.create () in
  let origin = Cluster.add_origin cluster ~name:"www.example.edu" () in
  Origin.set_static origin ~path:"/doc.txt" ~content_type:"text/plain" ~max_age:300
    "aaaaaaaaaabbbbbbbbbb";
  Origin.set_static origin ~path:"/nakika.js" ~content_type:"text/javascript" ~max_age:300
    {|
var p = new Policy();
p.url = ["www.example.edu"];
p.onResponse = function() {
  var b = "", c;
  while ((c = Response.read()) != null) { b += c; }
  Response.write(b.toUpperCase());
}
p.register();
|};
  let proxy = Cluster.add_proxy cluster ~name:"nk1.nakika.net" () in
  let client = Cluster.add_client cluster ~name:"c1" in
  let resp =
    fetch_sync cluster ~client ~proxy
      (Message.request ~headers:[ ("Range", "bytes=8-11") ] "http://www.example.edu/doc.txt")
  in
  Alcotest.(check int) "206" 206 resp.Message.status;
  Alcotest.(check string) "slice of the transformed instance" "AABB" (body resp);
  Alcotest.(check (option string)) "content-range" (Some "bytes 8-11/20")
    (Message.resp_header resp "Content-Range");
  (* An ordinary request still gets the whole instance. *)
  let full = fetch_sync cluster ~client ~proxy (Message.request "http://www.example.edu/doc.txt") in
  Alcotest.(check int) "200" 200 full.Message.status;
  Alcotest.(check string) "full body" "AAAAAAAAAABBBBBBBBBB" (body full)


let test_concurrent_pipelines_do_not_interleave () =
  (* Two in-flight requests whose handlers suspend on a sub-fetch must
     not clobber each other's Request/Response globals in the shared
     stage context (the stage lock serializes them, §4's per-pipeline
     isolation). *)
  let cluster = Cluster.create () in
  let origin = Cluster.add_origin cluster ~name:"www.example.edu" () in
  Origin.set_static origin ~path:"/a.html" ~max_age:0 "page-a";
  Origin.set_static origin ~path:"/b.html" ~max_age:0 "page-b";
  Origin.set_static origin ~path:"/frag" ~max_age:0 "x";
  Origin.set_static origin ~path:"/nakika.js" ~content_type:"text/javascript" ~max_age:300
    {|
var p = new Policy();
p.url = ["www.example.edu"];
p.onResponse = function() {
  if (Request.url.indexOf("frag") >= 0) { return; }
  var before = Request.url;
  var body = "", c;
  while ((c = Response.read()) != null) { body += c; }
  // Suspend mid-handler: another pipeline would love to sneak in here.
  fetchResource("http://www.example.edu/frag");
  var after = Request.url;
  Response.write(body + "|" + (before == after ? "stable" : "CLOBBERED"));
}
p.register();
|};
  let proxy = Cluster.add_proxy cluster ~name:"nk1.nakika.net" () in
  let client = Cluster.add_client cluster ~name:"c1" in
  let results = ref [] in
  (* Issue both before running the simulator: truly concurrent. *)
  Cluster.fetch cluster ~client ~proxy (Message.request "http://www.example.edu/a.html")
    (fun r -> results := ("a", body r) :: !results);
  Cluster.fetch cluster ~client ~proxy (Message.request "http://www.example.edu/b.html")
    (fun r -> results := ("b", body r) :: !results);
  Cluster.run cluster;
  let sorted = List.sort compare !results in
  Alcotest.(check (list (pair string string))) "both transformed with their own state"
    [ ("a", "page-a|stable"); ("b", "page-b|stable") ]
    sorted


let test_simulation_is_deterministic () =
  (* Two runs of the same seeded deployment produce identical traces —
     the property every experiment in bench/ relies on. *)
  let run () =
    let cluster = Cluster.create ~seed:77 () in
    let origin = Cluster.add_origin cluster ~name:Core.Workload.Simm.host () in
    Core.Workload.Simm.install_origin origin;
    let proxy = Cluster.add_proxy cluster ~name:"nk1.nakika.net" () in
    let client = Cluster.add_client cluster ~name:"c1" in
    let sim = Cluster.sim cluster in
    let rng = Core.Util.Prng.create 5 in
    let latencies = ref [] in
    Core.Workload.Driver.closed_loop cluster ~client ~proxy ~think:0.1
      ~until:(Core.Sim.Sim.now sim +. 10.0)
      ~make_request:(fun _ ->
        Core.Workload.Simm.make_request ~rng ~mode:Core.Workload.Simm.Edge ~student:"s")
      ~on_response:(fun _ _ resp elapsed ->
        latencies := (resp.Core.Http.Message.status, elapsed) :: !latencies)
      ();
    Cluster.run cluster;
    ( !latencies,
      Core.Sim.Trace.count (Node.trace proxy) "requests",
      Origin.request_count origin )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical runs" true (a = b);
  let _, requests, _ = a in
  Alcotest.(check bool) "did real work" true (requests > 20)

(* --- stale-if-error degradation (RFC 2616 stale serving) ------------- *)

(* The simulator's default start time; fault plans use absolute times
   and must be built before the cluster exists. *)
let sim_epoch = 1_136_073_600.0

(* A cluster whose one origin fails from [fail_at] on, with [cap] as
   the node's staleness budget. The page is cached with max_age 10. *)
let stale_fixture ~fail_at ~cap =
  let plan = Core.Faults.Plan.create () in
  Core.Faults.Plan.fail_origin plan ~host:"www.example.edu" ~at:(sim_epoch +. fail_at)
    ~until:(sim_epoch +. 10_000.0) ();
  let cluster = Cluster.create ~faults:plan () in
  let origin = Cluster.add_origin cluster ~name:"www.example.edu" () in
  Origin.set_static origin ~path:"/page.html" ~max_age:10 "cached-copy";
  let config = { Config.default with Config.stale_if_error = cap } in
  let proxy = Cluster.add_proxy cluster ~name:"nk1.nakika.net" ~config () in
  let client = Cluster.add_client cluster ~name:"c1" in
  let req () = Message.request "http://www.example.edu/page.html" in
  ignore (fetch_sync cluster ~client ~proxy (req ()));
  (cluster, proxy, client, req)

let advance cluster until =
  let sim = Cluster.sim cluster in
  Core.Sim.Sim.run ~until:(sim_epoch +. until) sim

let test_stale_served_on_origin_failure () =
  let cluster, proxy, client, req = stale_fixture ~fail_at:5.0 ~cap:900.0 in
  advance cluster 30.0;
  (* Entry expired at ~epoch+10, origin now failing: degraded serving. *)
  let resp = fetch_sync cluster ~client ~proxy (req ()) in
  Alcotest.(check int) "still 200" 200 resp.Message.status;
  Alcotest.(check string) "stale body" "cached-copy" (body resp);
  (match Message.resp_header resp "X-NaKika-Stale" with
   | None -> Alcotest.fail "X-NaKika-Stale missing"
   | Some age ->
     Alcotest.(check bool) ("staleness plausible: " ^ age) true
       (match int_of_string_opt age with Some a -> a >= 10 && a <= 40 | None -> false));
  Alcotest.(check bool) "stale_served counted" true
    (Core.Telemetry.Metrics.counter (Node.metrics proxy) "cache.stale_served" > 0)

let test_fresh_preferred_over_stale () =
  (* While the copy is still fresh the failure is invisible: served from
     cache, no stale marker. *)
  let cluster, proxy, client, req = stale_fixture ~fail_at:2.0 ~cap:900.0 in
  advance cluster 5.0;
  let resp = fetch_sync cluster ~client ~proxy (req ()) in
  Alcotest.(check int) "fresh 200" 200 resp.Message.status;
  Alcotest.(check (option string)) "no stale marker" None
    (Message.resp_header resp "X-NaKika-Stale");
  Alcotest.(check int) "nothing served stale" 0
    (Core.Telemetry.Metrics.counter (Node.metrics proxy) "cache.stale_served")

let test_stale_cap_exceeded_fails_hard () =
  (* Staleness cap 30 s: at ~60 s past expiry the copy is too old and
     the origin's error surfaces. *)
  let cluster, proxy, client, req = stale_fixture ~fail_at:5.0 ~cap:30.0 in
  advance cluster 70.0;
  let resp = fetch_sync cluster ~client ~proxy (req ()) in
  Alcotest.(check bool) ("hard failure: " ^ string_of_int resp.Message.status) true
    (resp.Message.status >= 500);
  Alcotest.(check (option string)) "no stale marker" None
    (Message.resp_header resp "X-NaKika-Stale");
  Alcotest.(check int) "nothing served stale" 0
    (Core.Telemetry.Metrics.counter (Node.metrics proxy) "cache.stale_served")

let test_stale_within_cap_then_beyond () =
  (* The same deployment first degrades gracefully (inside the cap),
     then fails hard once the copy ages past it. *)
  let cluster, proxy, client, req = stale_fixture ~fail_at:5.0 ~cap:60.0 in
  advance cluster 40.0;
  let resp = fetch_sync cluster ~client ~proxy (req ()) in
  Alcotest.(check int) "within cap: degraded 200" 200 resp.Message.status;
  Alcotest.(check bool) "marked stale" true
    (Message.resp_header resp "X-NaKika-Stale" <> None);
  advance cluster 200.0;
  let resp = fetch_sync cluster ~client ~proxy (req ()) in
  Alcotest.(check bool) "beyond cap: hard failure" true (resp.Message.status >= 500)

(* Node construction rejects invalid configs with the same checker the
   provisioning compiler runs ([Config.validate]); one regression test
   per rejection class. *)
let expect_rejected label config needle =
  let cluster = Cluster.create () in
  match Cluster.add_proxy cluster ~name:"nk-bad.nakika.net" ~config () with
  | _ -> Alcotest.fail (label ^ ": invalid config accepted")
  | exception Invalid_argument msg ->
    let contains =
      let n = String.length needle and len = String.length msg in
      let rec scan i = i + n <= len && (String.sub msg i n = needle || scan (i + 1)) in
      scan 0
    in
    if not contains then
      Alcotest.fail (Printf.sprintf "%s: rejection message %S lacks %S" label msg needle)

let test_config_rejects_inverted_waters () =
  expect_rejected "inverted waters"
    { Config.default with Config.diffusion_low_water = 0.9; diffusion_high_water = 0.8 }
    "diffusion_low_water";
  expect_rejected "equal waters"
    { Config.default with Config.diffusion_low_water = 0.8; diffusion_high_water = 0.8 }
    "diffusion_low_water"

let test_config_rejects_bad_capacity () =
  expect_rejected "zero capacity" { Config.default with Config.admission_capacity = 0 }
    "admission_capacity";
  expect_rejected "negative capacity" { Config.default with Config.admission_capacity = -4 }
    "admission_capacity"

let test_config_rejects_negative_timeouts () =
  expect_rejected "negative origin timeout"
    { Config.default with Config.origin_timeout = -1.0 }
    "origin_timeout";
  expect_rejected "zero peer timeout" { Config.default with Config.peer_timeout = 0.0 }
    "peer_timeout"

let test_config_rejects_penalty_above_quarantine_max () =
  expect_rejected "penalty above cap"
    { Config.default with Config.termination_penalty = 600.0; quarantine_max = 240.0 }
    "termination_penalty"

let test_config_rejects_bad_site_tables () =
  expect_rejected "oversubscribed shares"
    { Config.default with Config.site_shares = [ ("a.example", 0.7); ("b.example", 0.6) ] }
    "site_shares";
  expect_rejected "inverted site quarantine"
    { Config.default with Config.site_quarantine = [ ("a.example", 600.0, 300.0) ] }
    "site_quarantine";
  expect_rejected "non-positive site fuel"
    { Config.default with Config.site_fuel = [ ("a.example", 0) ] }
    "site_fuel"

let test_valid_config_still_accepted () =
  (* The validator must not reject the documented sentinel values. *)
  let cluster = Cluster.create () in
  let config =
    { Config.default with Config.stale_if_error = 0.0; anti_entropy_interval = 0.0;
      health_report_interval = 0.0; quarantine_decay = 0.0 }
  in
  ignore (Cluster.add_proxy cluster ~name:"nk-ok.nakika.net" ~config ())

(* --- tail tolerance: deadlines, hedging, the client timeout ---------- *)

let epoch = 1_136_073_600.0

let test_client_timeout_reason_headers () =
  (* A crashed proxy swallows the request; the cluster's client-side
     timeout must synthesize a 504 that says so machine-readably, like
     every other synthesized failure in the stack. *)
  let plan = Core.Faults.Plan.create () in
  Core.Faults.Plan.crash plan ~host:"nk1.nakika.net" ~at:epoch ();
  let cluster = Cluster.create ~faults:plan () in
  ignore (basic_site cluster);
  let proxy = Cluster.add_proxy cluster ~name:"nk1.nakika.net" () in
  let client = Cluster.add_client cluster ~name:"c1" in
  let result = ref None in
  Cluster.fetch cluster ~client ~proxy ~timeout:2.0
    (Message.request "http://www.example.edu/index.html")
    (fun r -> result := Some r);
  (* The timeout timer is a daemon event: drive the clock past it. *)
  Cluster.run ~until:(epoch +. 10.0) cluster;
  match !result with
  | None -> Alcotest.fail "client timeout never fired"
  | Some r ->
    Alcotest.(check int) "synthesized 504" 504 r.Message.status;
    Alcotest.(check (option string)) "machine-readable reason" (Some "client-timeout")
      (Message.resp_header r Core.Resource.Deadline.reason_header);
    Alcotest.(check (option string)) "retry-after hint" (Some "2")
      (Message.resp_header r "Retry-After")

let test_deadline_zero_budget_admission () =
  (* A request arriving with its budget already spent is refused at the
     front door — before any origin, peer, or pipeline work. *)
  let cluster = Cluster.create () in
  let origin = basic_site cluster in
  let proxy = Cluster.add_proxy cluster ~name:"nk1.nakika.net" () in
  let client = Cluster.add_client cluster ~name:"c1" in
  let req = Message.request "http://www.example.edu/index.html" in
  Message.set_req_header req Core.Resource.Deadline.header "0";
  let resp = fetch_sync cluster ~client ~proxy req in
  Alcotest.(check int) "504 at admission" 504 resp.Message.status;
  Alcotest.(check (option string)) "shedding point" (Some "deadline-admission")
    (Message.resp_header resp Core.Resource.Deadline.reason_header);
  Alcotest.(check int) "counted at admission" 1
    (Core.Telemetry.Metrics.counter (Node.metrics proxy)
       ~labels:[ ("at", "admission") ]
       "deadline.expired");
  Alcotest.(check int) "no origin work was done" 0 (Origin.request_count origin)

let test_deadline_clamps_origin_timeout () =
  (* The origin sits behind a 2 s link; the request's 0.5 s budget must
     clamp the origin hop to the remaining budget instead of waiting
     out the full [origin_timeout] (10 s) or the 4 s round trip. *)
  let cluster = Cluster.create () in
  let origin = basic_site cluster in
  let config =
    { Config.default with Config.request_deadline = 0.5; enable_pipeline = false }
  in
  let proxy = Cluster.add_proxy cluster ~name:"nk1.nakika.net" ~config () in
  let client = Cluster.add_client cluster ~name:"c1" in
  Cluster.connect cluster (Node.host proxy) (Origin.host origin) ~latency:2.0
    ~bandwidth:12_500_000.0;
  let sim = Cluster.sim cluster in
  let t0 = Core.Sim.Sim.now sim in
  let answered_at = ref Float.nan in
  let result = ref None in
  Cluster.fetch cluster ~client ~proxy
    (Message.request "http://www.example.edu/index.html")
    (fun r ->
      answered_at := Core.Sim.Sim.now sim;
      result := Some r);
  Cluster.run cluster;
  (match !result with
   | None -> Alcotest.fail "no response"
   | Some r -> Alcotest.(check int) "degraded, not hung" 504 r.Message.status);
  Alcotest.(check bool) "failed at the budget, not the hop timeout" true
    (!answered_at -. t0 < 1.0)

let test_hedged_fetch_beats_crashed_holder () =
  (* Chaos arm for the hedged path: the newest announced holder (the
     primary candidate) has crashed. The primary peer fetch hangs; the
     hedge fires after the cold-start delay (peer_timeout / 4) into the
     next live replica, whose copy wins the race — the crashed arm's
     silence is absorbed by the incarnation-guarded net layer, and the
     client is served well before the primary's timeout. *)
  let plan = Core.Faults.Plan.create () in
  Core.Faults.Plan.crash plan ~host:"nk-b.nakika.net" ~at:(epoch +. 5.0) ();
  let cluster = Cluster.create ~faults:plan () in
  ignore (basic_site cluster);
  let config = { Config.default with Config.enable_hedging = true } in
  let a = Cluster.add_proxy cluster ~name:"nk-a.nakika.net" ~config () in
  let b = Cluster.add_proxy cluster ~name:"nk-b.nakika.net" ~config () in
  let c = Cluster.add_proxy cluster ~name:"nk-c.nakika.net" ~config () in
  let client = Cluster.add_client cluster ~name:"c1" in
  let req () = Message.request "http://www.example.edu/index.html" in
  (* Warm both holders while everyone is up; nk-b announces last, so a
     later cooperative lookup tries it first. *)
  ignore (fetch_sync cluster ~client ~proxy:a (req ()));
  ignore (fetch_sync cluster ~client ~proxy:b (req ()));
  let sim = Cluster.sim cluster in
  Core.Sim.Sim.run ~until:(epoch +. 6.0) sim;
  let t0 = Core.Sim.Sim.now sim in
  let answered_at = ref Float.nan in
  let result = ref None in
  Cluster.fetch cluster ~client ~proxy:c (req ()) (fun r ->
      answered_at := Core.Sim.Sim.now sim;
      result := Some r);
  (* The hedge-delay timer is a daemon event: drive the clock. *)
  Cluster.run ~until:(epoch +. 20.0) cluster;
  (match !result with
   | None -> Alcotest.fail "hedged fetch lost"
   | Some r ->
     Alcotest.(check int) "served" 200 r.Message.status;
     Alcotest.(check string) "peer copy" "<html>hello</html>" (body r));
  let m = Node.metrics c in
  Alcotest.(check bool) "hedge issued" true
    (Core.Telemetry.Metrics.counter m "hedge.issued" >= 1);
  Alcotest.(check bool) "backup won the race" true
    (Core.Telemetry.Metrics.counter m "hedge.wins" >= 1);
  Alcotest.(check bool) "answered before the primary's timeout" true
    (!answered_at -. t0 < (Node.config c).Config.peer_timeout)

let test_dht_sweeper_expires_idle_placements () =
  (* Regression for the sweeper daemon: sloppy placements on a key the
     crowd has abandoned must vanish without any further lookup
     touching it — [Dht.get] expires only what it reads; idle keys are
     the periodic sweep's job. *)
  let config =
    {
      Config.default with
      Config.enable_hotspots = true;
      hotspot_threshold = 2.0;
      hotspot_replicas = 2;
      hotspot_ttl = 5.0;
      hotspot_halflife = 5.0;
    }
  in
  let cluster = Cluster.create () in
  ignore (basic_site cluster);
  ignore (Cluster.add_proxy cluster ~name:"nk1.nakika.net" ~config ());
  let dht = Cluster.dht cluster in
  let names = List.init 12 (fun i -> Printf.sprintf "edge-%02d" i) in
  List.iter (fun n -> ignore (Core.Overlay.Dht.join dht n)) names;
  let sim = Cluster.sim cluster in
  let t0 = Core.Sim.Sim.now sim in
  let key = "GET http://flash.example/crowd" in
  ignore
    (Core.Overlay.Dht.put dht ~now:t0 ~from:(List.hd names) ~key ~value:"v" ~ttl:3600.0);
  (* A one-second flash crowd (~100 req/s, well past the 2 req/s
     threshold) creates the placements, then moves on for good. *)
  for i = 0 to 119 do
    Core.Sim.Sim.schedule_at sim
      (t0 +. (0.01 *. float_of_int i))
      (fun () ->
        ignore
          (Core.Overlay.Dht.get dht ~now:(Core.Sim.Sim.now sim)
             ~from:(List.nth names (i mod 12))
             ~key))
  done;
  let placed = ref 0 in
  Core.Sim.Sim.schedule_at sim (t0 +. 1.5) (fun () ->
      placed := Core.Overlay.Dht.sloppy_replicas dht);
  (* TTL 5 s, sweep period max(1, ttl/2) = 2.5 s: by +20 s the idle
     placement has long been swept — with no lookup ever touching the
     key again. *)
  Cluster.run ~until:(t0 +. 20.0) cluster;
  Alcotest.(check bool) "crowd created placements" true (!placed > 0);
  Alcotest.(check int) "idle placements swept without a lookup" 0
    (Core.Overlay.Dht.sloppy_replicas dht)

let test_config_rejects_bad_tail_knobs () =
  expect_rejected "negative request deadline"
    { Config.default with Config.request_deadline = -1.0 }
    "request_deadline";
  expect_rejected "zero hedge rate" { Config.default with Config.hedge_rate = 0.0 }
    "hedge_rate";
  expect_rejected "hedge rate above one" { Config.default with Config.hedge_rate = 1.5 }
    "hedge_rate";
  expect_rejected "retry budget ratio above one"
    { Config.default with Config.retry_budget_ratio = 1.5 }
    "retry_budget_ratio"

let suite =
  [
    Alcotest.test_case "proxying a static page" `Quick test_plain_proxying;
    Alcotest.test_case ".nakika.net URL rewriting" `Quick test_nakika_url_rewriting;
    Alcotest.test_case "cache hits avoid the origin" `Quick test_cache_hit_avoids_origin;
    Alcotest.test_case "expired entries are refetched" `Quick test_cache_expiry_refetches;
    Alcotest.test_case "304 revalidation revives stale entries" `Quick test_revalidation_304;
    Alcotest.test_case "revalidation picks up changed content" `Quick
      test_revalidation_changed_content;
    Alcotest.test_case "DHT cooperative caching" `Quick test_dht_cooperative_caching;
    Alcotest.test_case "DHT re-announcement outlives the soft-state TTL" `Quick
      test_dht_reannouncement_outlives_ttl;
    Alcotest.test_case "DHT disabled goes to origin" `Quick test_dht_disabled_goes_to_origin;
    Alcotest.test_case "site script transforms responses" `Quick test_site_script_pipeline;
    Alcotest.test_case "negative cache for missing nakika.js" `Quick
      test_negative_cache_for_missing_site_script;
    Alcotest.test_case "administrative walls enforced" `Quick test_admin_walls_enforced;
    Alcotest.test_case "policy updates apply on expiry (§3.2)" `Quick
      test_wall_update_via_expiry;
    Alcotest.test_case "plain-proxy config runs no scripts" `Quick
      test_plain_proxy_config_runs_no_scripts;
    Alcotest.test_case "memory bomb terminated under controls" `Quick
      test_memory_bomb_terminated_with_controls;
    Alcotest.test_case "no termination without controls" `Quick
      test_no_termination_without_controls;
    Alcotest.test_case "quarantined sites recover, repeat offenders escalate" `Quick
      test_quarantine_recovery;
    Alcotest.test_case "hard state replicates across proxies" `Quick
      test_hard_state_replicates_between_proxies;
    Alcotest.test_case "access logs posted to the site" `Quick test_access_log_posted;
    Alcotest.test_case "redirector sends clients to the near proxy" `Quick
      test_redirector_integration;
    Alcotest.test_case "integrity: misbehaving peer detected (§6)" `Quick
      test_integrity_catches_misbehaving_peer;
    Alcotest.test_case "integrity: honest peers accepted" `Quick
      test_integrity_accepts_honest_peer;
    Alcotest.test_case "emission control mediates script fetches (§3.2)" `Quick
      test_emission_control_on_script_fetches;
    Alcotest.test_case "range requests sliced from the full instance (§3.1)" `Quick
      test_range_served_from_full_instance;
    Alcotest.test_case "concurrent pipelines are isolated (stage lock)" `Quick
      test_concurrent_pipelines_do_not_interleave;
    Alcotest.test_case "simulation runs are deterministic" `Quick
      test_simulation_is_deterministic;
    Alcotest.test_case "stale-if-error: stale served on origin failure" `Quick
      test_stale_served_on_origin_failure;
    Alcotest.test_case "stale-if-error: fresh copies never marked" `Quick
      test_fresh_preferred_over_stale;
    Alcotest.test_case "stale-if-error: hard failure past the cap" `Quick
      test_stale_cap_exceeded_fails_hard;
    Alcotest.test_case "stale-if-error: degrades then fails as the copy ages" `Quick
      test_stale_within_cap_then_beyond;
    Alcotest.test_case "config validation: inverted diffusion waters" `Quick
      test_config_rejects_inverted_waters;
    Alcotest.test_case "config validation: non-positive admission capacity" `Quick
      test_config_rejects_bad_capacity;
    Alcotest.test_case "config validation: negative timeouts" `Quick
      test_config_rejects_negative_timeouts;
    Alcotest.test_case "config validation: penalty above quarantine max" `Quick
      test_config_rejects_penalty_above_quarantine_max;
    Alcotest.test_case "config validation: bad per-site tables" `Quick
      test_config_rejects_bad_site_tables;
    Alcotest.test_case "config validation: sentinel values stay legal" `Quick
      test_valid_config_still_accepted;
    Alcotest.test_case "client timeout 504 carries reason headers" `Quick
      test_client_timeout_reason_headers;
    Alcotest.test_case "deadline: zero-budget request refused at admission" `Quick
      test_deadline_zero_budget_admission;
    Alcotest.test_case "deadline: budget clamps the origin hop timeout" `Quick
      test_deadline_clamps_origin_timeout;
    Alcotest.test_case "hedging: backup replica beats a crashed holder" `Quick
      test_hedged_fetch_beats_crashed_holder;
    Alcotest.test_case "hotspots: sweeper expires idle placements" `Quick
      test_dht_sweeper_expires_idle_placements;
    Alcotest.test_case "config validation: tail-tolerance knobs" `Quick
      test_config_rejects_bad_tail_knobs;
  ]
