(* Determinism soak at planet scale: a 1000-node cluster absorbing a
   Zipf crowd for >= 10^6 simulated events, run twice from the same
   seed — the telemetry of both runs (DHT, network, and every node's
   registry, rendered to JSON lines) must be bit-identical, and so
   must the response stream digest. This is PR 4's same-seed chaos
   property at 100x the scale, covering the ordered-set ring, the
   redirector's proximity cache, the alias-table Zipf sampler, and
   hotspot replication's PRNG-driven placement.

   Gated behind `dune build @scale-soak` (not part of `dune runtest`):
   the two runs take a minute or so. NAKIKA_SOAK_NODES and
   NAKIKA_SOAK_REQUESTS shrink it for spot checks; the 10^6
   event-volume floor applies at the full default scale, reduced runs
   keep a per-request floor so an early exit cannot pass. *)

module Metrics = Core.Telemetry.Metrics
module Sim = Core.Sim.Sim

let epoch = 1_136_073_600.0

let nodes =
  match Option.bind (Sys.getenv_opt "NAKIKA_SOAK_NODES") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> 1000

let requests =
  match Option.bind (Sys.getenv_opt "NAKIKA_SOAK_REQUESTS") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> 100_000

let universe = 10_000
let rate = 3000.0

let run () =
  let cluster =
    Core.Node.Cluster.create ~seed:4242 ~default_latency:0.005
      ~default_bandwidth:12_500_000.0 ()
  in
  let origin = Core.Node.Cluster.add_origin cluster ~name:"www.crowd.example" () in
  for r = 0 to universe - 1 do
    Core.Node.Origin.set_static origin
      ~path:(Printf.sprintf "/zipf/%d.html" r)
      ~max_age:600
      (Printf.sprintf "<html>zipf rank %d</html>" r)
  done;
  let config =
    {
      Core.Node.Config.default with
      Core.Node.Config.enable_pipeline = false;
      enable_tracing = false;
      enable_resource_controls = false;
      lint_mode = `Off;
      enable_hotspots = true;
      hotspot_threshold = 5.0;
      hotspot_replicas = 4;
      hotspot_ttl = 60.0;
      hotspot_halflife = 5.0;
    }
  in
  let proxies =
    List.init nodes (fun i ->
        Core.Node.Cluster.add_proxy cluster ~name:(Printf.sprintf "edge-%04d.nakika.net" i)
          ~config ())
  in
  let clients =
    List.mapi
      (fun i proxy ->
        let c = Core.Node.Cluster.add_client cluster ~name:(Printf.sprintf "client-%04d" i) in
        Core.Node.Cluster.connect cluster c (Core.Node.Node.host proxy) ~latency:0.0005
          ~bandwidth:12_500_000.0;
        c)
      proxies
    |> Array.of_list
  in
  let sim = Core.Node.Cluster.sim cluster in
  let zipf = Core.Workload.Zipf.create ~s:0.9 ~universe in
  let wl = Core.Util.Prng.create 9001 in
  let statuses = Buffer.create (2 * requests) in
  let ok = ref 0 and latency_sum = ref 0.0 in
  for i = 0 to requests - 1 do
    let at = epoch +. 5.0 +. (float_of_int i /. rate) in
    let rank = Core.Workload.Zipf.sample zipf wl in
    let client = clients.(Core.Util.Prng.int wl (Array.length clients)) in
    let url = Printf.sprintf "http://www.crowd.example/zipf/%d.html" rank in
    Sim.schedule_at sim at (fun () ->
        let started = Sim.now sim in
        Core.Node.Cluster.fetch cluster ~client ~timeout:10.0 (Core.Http.Message.request url)
          (fun resp ->
            Buffer.add_string statuses (string_of_int resp.Core.Http.Message.status);
            Buffer.add_char statuses ';';
            if resp.Core.Http.Message.status = 200 then begin
              incr ok;
              latency_sum := !latency_sum +. (Sim.now sim -. started)
            end))
  done;
  Sim.run ~until:(epoch +. 5.0 +. (float_of_int requests /. rate) +. 15.0) sim;
  let merged = Metrics.create () in
  Metrics.merge ~into:merged (Core.Overlay.Dht.metrics (Core.Node.Cluster.dht cluster));
  Metrics.merge ~into:merged (Core.Sim.Net.metrics (Core.Node.Cluster.net cluster));
  List.iter (fun p -> Metrics.merge ~into:merged (Core.Node.Node.metrics p)) proxies;
  let digest =
    Printf.sprintf "ok=%d latency_sum=%.9f statuses=%s" !ok !latency_sum
      (Core.Crypto.Sha256.digest_hex (Buffer.contents statuses))
  in
  (Sim.executed sim, digest, Metrics.to_json_lines merged)

let () =
  Printf.printf "scale soak: %d nodes, %d Zipf requests, two same-seed runs\n%!" nodes requests;
  let t0 = Sys.time () in
  let events1, digest1, telemetry1 = run () in
  let t1 = Sys.time () in
  let events2, digest2, telemetry2 = run () in
  let t2 = Sys.time () in
  Printf.printf "  run 1: %d events (%.1fs)   run 2: %d events (%.1fs)\n" events1 (t1 -. t0)
    events2 (t2 -. t1);
  Printf.printf "  digest: %s\n" digest1;
  (* Events per request grow with ring size (hops ~ log n), so the
     10^6 floor is a full-scale claim; reduced spot-checks still must
     clear a few events per request, so an early exit cannot pass. *)
  let min_events =
    if nodes >= 1000 && requests >= 100_000 then 1_000_000 else requests * 3
  in
  let failures = ref 0 in
  let check label ok = if ok then Printf.printf "  %s: ok\n" label
    else begin
      Printf.printf "  %s: FAILED\n" label;
      incr failures
    end
  in
  check (Printf.sprintf "event volume >= %d" min_events)
    (events1 >= min_events && events2 >= min_events);
  check "event counts identical" (events1 = events2);
  check "response stream digests identical" (digest1 = digest2);
  check
    (Printf.sprintf "telemetry bit-identical (%d bytes)" (String.length telemetry1))
    (String.equal telemetry1 telemetry2);
  if !failures > 0 then begin
    Printf.eprintf "scale soak: %d check(s) failed\n" !failures;
    exit 1
  end;
  print_endline "scale soak: PASS"
